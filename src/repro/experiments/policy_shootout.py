"""Tail-TTFT SLO attainment across scheduling policies — the policy shootout.

Sweeps the registered :class:`~repro.serve.ServePolicy` presets
(``scale.policy_names``) across offered load (``scale.serve_rates``) and
platforms (``scale.policy_platforms`` — the unbounded baseline plus the
capacity-bounded HBM variant, so policies are compared both with and without
memory pressure).  Every point serves the *same-seed* decode-heavy traffic
(:data:`repro.serve.library.OVERLOAD_LENGTHS`); only the scheduling
discipline — admission order, step composition, priority assignment —
differs, so the attainment gaps are pure policy effects.

The headline metric is **SLO attainment** against ``scale.policy_ttft_slo``:
the fraction of requests whose time-to-first-token met the budget.  The
policies trade it off differently: chunked prefill bounds the prefill work
per step (decode latency stays flat while a long prompt streams in),
prefill/decode disaggregation alternates pure phases, priority-class
admission lets interactive requests overtake queued batch work, and
SLO-deadline admission preempts running requests when a tighter-deadline
arrival would otherwise miss.  The default policy reproduces the historical
scheduler exactly and anchors the comparison.

The whole study is **one** declarative record: :func:`spec` builds the
policies × platforms × rates grid as a single cartesian
:class:`~repro.sweep.SweepSpec` over the ``"serve"`` task
(:func:`repro.serve.sweep.policy_shootout_spec`) — each policy is a regular
axis value, so policy identity lands in every point's cache key — registered
as the ``"policy-shootout"`` experiment, and :func:`run` post-processes it
into per-policy curves and a per-platform winner summary.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..api.experiment import ExperimentSpec, register_experiment
from ..platforms import get_platform
from ..schedules import Schedule
from ..serve.library import OVERLOAD_LENGTHS, _serve_model
from ..serve.sweep import policy_shootout_spec
from ..sweep import SweepRunner, SweepSpec, resolve_runner
from .common import DEFAULT_SCALE, ExperimentScale, resolve_scale

#: the per-rate metrics each policy's curve reports
_ROW_METRICS = ("slo_attainment", "slo_goodput_rpmc", "ttft_p99",
                "tpot_p99", "goodput_rpmc", "preemptions")


def spec(scale: ExperimentScale = DEFAULT_SCALE, **overrides) -> SweepSpec:
    """The policy study (policies × platforms × rates) as one spec.

    ``overrides`` forward to :func:`repro.serve.sweep.policy_shootout_spec`
    (``policies``, ``platforms``, ``rates``, ``ttft_slo``,
    ``num_requests`` …).
    """
    scale = resolve_scale(scale)
    model = _serve_model(scale.model_scale, max_experts=scale.serve_max_experts)
    kwargs = dict(rates=scale.serve_rates,
                  policies=list(scale.policy_names),
                  platforms=[get_platform(name)
                             for name in scale.policy_platforms],
                  ttft_slo=scale.policy_ttft_slo,
                  batch_cap=scale.serve_batch_cap,
                  num_requests=scale.serve_requests, seed=scale.seed,
                  num_layers=scale.serve_layers, kv_tile_rows=64,
                  name=f"policy-shootout-{scale.name}", **OVERLOAD_LENGTHS)
    kwargs.update(overrides)
    return policy_shootout_spec(model, Schedule.dynamic(), **kwargs)


@register_experiment("policy-shootout",
                     "tail-TTFT SLO attainment across scheduling policies x "
                     "offered load x platforms (admission/batching/priority "
                     "registries)")
def _policy_shootout_experiment(scale="default", **overrides) -> ExperimentSpec:
    return ExperimentSpec(
        name="policy-shootout",
        description="tail-TTFT SLO attainment across scheduling policies x "
                    "offered load x platforms (admission/batching/priority "
                    "registries)",
        sweep=spec(resolve_scale(scale), **overrides))


def run(scale: ExperimentScale = DEFAULT_SCALE,
        runner: Optional[SweepRunner] = None) -> Dict[str, object]:
    """Regenerate the policy-comparison curves at the given experiment scale."""
    scale = resolve_scale(scale)
    runner = resolve_runner(runner)
    grid = spec(scale)
    metrics = runner.metrics(grid)

    # the grid is policy-major, then platform, then rate (see
    # policy_shootout_spec); one slice per (policy, platform) covers its ladder
    policies = list(scale.policy_names)
    platforms = list(scale.policy_platforms)
    rates = list(scale.serve_rates)
    per_curve: Dict[tuple, List[Dict[str, float]]] = {}
    for i, policy in enumerate(policies):
        for j, platform in enumerate(platforms):
            start = (i * len(platforms) + j) * len(rates)
            per_curve[(policy, platform)] = metrics[start:start + len(rates)]

    rows: List[Dict[str, float]] = []
    for k, rate in enumerate(rates):
        row: Dict[str, float] = {"rate": float(rate)}
        for (policy, platform), series in per_curve.items():
            for key in _ROW_METRICS:
                row[f"{platform}_{policy}_{key}"] = series[k][key]
        rows.append(row)

    # per platform: rank policies by their mean SLO attainment over the
    # ladder — the shootout summary
    summary: Dict[str, Dict[str, object]] = {}
    for platform in platforms:
        attainment = {
            policy: (sum(m["slo_attainment"]
                         for m in per_curve[(policy, platform)])
                     / len(rates))
            for policy in policies}
        winner = max(attainment, key=lambda p: attainment[p])
        summary[platform] = {
            "mean_slo_attainment": attainment,
            "best_policy": winner,
            "best_mean_slo_attainment": attainment[winner],
        }

    return {
        "rows": rows,
        "policies": policies,
        "platforms": platforms,
        "ttft_slo": scale.policy_ttft_slo,
        "batch_cap": scale.serve_batch_cap,
        "num_requests": scale.serve_requests,
        "summary": summary,
    }
