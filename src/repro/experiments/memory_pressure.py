"""Goodput and tail latency under finite HBM — the memory-pressure experiment.

Sweeps the serving load ladder (``scale.serve_rates``) across a family of
platforms that differ **only** in ``hbm_capacity_bytes``: the unbounded
baseline plus the page budgets in ``scale.memory_capacity_pages`` (each
budget is ``pages x kv_tile_rows`` KV rows of the served model — see
:func:`repro.serve.memory.kv_bytes_per_row`).  Traffic is decode-heavy
(:data:`repro.serve.library.OVERLOAD_LENGTHS`) so running requests grow
across page boundaries, which is what makes preemption — not just admission
queueing — part of the picture.

Goodput here is **SLO goodput** (:meth:`ServingReport.slo_goodput
<repro.serve.report.ServingReport.slo_goodput>`): completions whose TTFT met
the ``scale.memory_ttft_slo`` budget, per Mcycle.  Plain throughput merely
*plateaus* past saturation — every request still completes eventually — but
SLO goodput cliffs, because past the peak each extra offered request raises
concurrent KV demand, which turns into admission stalls, preemptions and
recompute work that push time-to-first-token over budget.  The bounded
platforms therefore peak **lower** than the unbounded baseline and decline
**strictly** past their peak (the *goodput cliff*); both properties are
pinned by ``tests/experiments/test_memory_pressure.py``, alongside p99 TTFT,
which inflates much faster on the bounded platforms.

The whole study is **one** declarative record: :func:`spec` builds the
platforms × rates grid as a single cartesian :class:`~repro.sweep.SweepSpec`
over the ``"serve"`` task (:func:`repro.serve.sweep.memory_pressure_spec`),
registered as the ``"memory-pressure"`` experiment, and :func:`run`
post-processes it into per-capacity curves.  Points are cached and
pool-parallel like every figure sweep, and the experiment is deterministic —
the same scale and seed reproduce every metric bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..api.experiment import ExperimentSpec, register_experiment
from ..platforms import Platform, platform_grid
from ..schedules import Schedule
from ..serve.library import OVERLOAD_LENGTHS, _serve_model
from ..serve.memory import kv_bytes_per_row
from ..serve.sweep import memory_pressure_spec
from ..sweep import SweepRunner, SweepSpec, resolve_runner
from .common import DEFAULT_SCALE, ExperimentScale, resolve_scale

#: KV rows per page — the serving engine's kv_tile_rows, which is also the
#: KVPagePool's page granularity (one definition keeps the byte budgets in
#: scale.memory_capacity_pages meaning whole pages)
KV_PAGE_ROWS = 64

#: the per-rate metrics each capacity's curve reports
_ROW_METRICS = ("slo_goodput_rpmc", "slo_attainment", "goodput_rpmc",
                "ttft_p99", "preemptions", "recompute_tokens",
                "admission_stalls", "kv_occupancy_mean")


def capacity_platforms(scale: ExperimentScale) -> Dict[str, Platform]:
    """The swept platforms: ``sda`` plus one HBM-capacity variant per budget.

    Page budgets convert to bytes through the *served model's* KV row size at
    the experiment's layer count, so a "4-page" platform means the same four
    schedulable pages at every model scale.
    """
    model = _serve_model(scale.model_scale, max_experts=scale.serve_max_experts)
    row_bytes = kv_bytes_per_row(model, scale.serve_layers)
    capacities = [None if pages is None else pages * KV_PAGE_ROWS * row_bytes
                  for pages in scale.memory_capacity_pages]
    return platform_grid(hbm_capacities=capacities)


def spec(scale: ExperimentScale = DEFAULT_SCALE, **overrides) -> SweepSpec:
    """The capacity study (platforms × rates) as one spec.

    ``overrides`` forward to :func:`repro.serve.sweep.memory_pressure_spec`
    (``rates``, ``platforms``, ``num_requests``, ``kv_mode``,
    ``eviction_policy`` …).
    """
    scale = resolve_scale(scale)
    model = _serve_model(scale.model_scale, max_experts=scale.serve_max_experts)
    kwargs = dict(rates=scale.serve_rates,
                  platforms=list(capacity_platforms(scale).values()),
                  batch_cap=scale.serve_batch_cap,
                  num_requests=scale.serve_requests, seed=scale.seed,
                  num_layers=scale.serve_layers, kv_tile_rows=KV_PAGE_ROWS,
                  ttft_slo=scale.memory_ttft_slo,
                  name=f"memory-pressure-{scale.name}", **OVERLOAD_LENGTHS)
    kwargs.update(overrides)
    return memory_pressure_spec(model, Schedule.dynamic(), **kwargs)


@register_experiment("memory-pressure",
                     "serving goodput + p99 TTFT vs offered load across HBM "
                     "capacities (paged KV, preemption under pressure)")
def _memory_pressure_experiment(scale="default", **overrides) -> ExperimentSpec:
    return ExperimentSpec(
        name="memory-pressure",
        description="serving goodput + p99 TTFT vs offered load across HBM "
                    "capacities (paged KV, preemption under pressure)",
        sweep=spec(resolve_scale(scale), **overrides))


def run(scale: ExperimentScale = DEFAULT_SCALE,
        runner: Optional[SweepRunner] = None) -> Dict[str, object]:
    """Regenerate the capacity-vs-load curves at the given experiment scale."""
    scale = resolve_scale(scale)
    runner = resolve_runner(runner)
    grid = spec(scale)
    metrics = runner.metrics(grid)

    # the grid is platform-major (see memory_pressure_spec); one slice per
    # capacity covers its rate ladder
    labels = list(capacity_platforms(scale))
    rates = list(scale.serve_rates)
    per_platform: Dict[str, List[Dict[str, float]]] = {
        label: metrics[i * len(rates):(i + 1) * len(rates)]
        for i, label in enumerate(labels)}

    rows: List[Dict[str, float]] = []
    for j, rate in enumerate(rates):
        row: Dict[str, float] = {"rate": float(rate)}
        for label, series in per_platform.items():
            for key in _ROW_METRICS:
                row[f"{label}_{key}"] = series[j][key]
        rows.append(row)

    # per capacity: the SLO-goodput peak and how far past-saturation load
    # falls off it — the cliff summary the regression test pins
    summary: Dict[str, Dict[str, float]] = {}
    for label, series in per_platform.items():
        goodput = [m["slo_goodput_rpmc"] for m in series]
        peak = max(range(len(goodput)), key=lambda i: goodput[i])
        summary[label] = {
            "peak_rate": float(rates[peak]),
            "peak_slo_goodput_rpmc": goodput[peak],
            "final_slo_goodput_rpmc": goodput[-1],
            "cliff_ratio": (goodput[-1] / goodput[peak]
                            if goodput[peak] > 0 else 0.0),
            "preemptions": float(sum(m["preemptions"] for m in series)),
            "admission_stalls": float(sum(m["admission_stalls"]
                                          for m in series)),
        }

    return {
        "rows": rows,
        "capacities": labels,
        "batch_cap": scale.serve_batch_cap,
        "num_requests": scale.serve_requests,
        "ttft_slo": scale.memory_ttft_slo,
        "summary": summary,
    }
