"""Command-line runner for the figure experiments.

Usage::

    python -m repro.experiments.runner --figure 9          # one figure
    python -m repro.experiments.runner --all               # everything
    python -m repro.experiments.runner --figure 14 --smoke # fast, tiny scale

Each experiment prints the regenerated rows and the headline summary the paper
quotes; EXPERIMENTS.md records a captured run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict

from . import (common, figure1, figure8, figure9_10, figure12_13, figure14, figure15,
               figure17, figure19_20, figure21)
from .common import DEFAULT_SCALE, SMOKE_SCALE, ExperimentScale
from .report import format_summary, format_table

#: figure id -> callable(scale) -> result dictionary
FIGURES: Dict[str, Callable[[ExperimentScale], dict]] = {
    "1": figure1.run,
    "8": figure8.run,
    "9": lambda scale: figure9_10.run(scale, large_batch=False),
    "10": lambda scale: figure9_10.run(scale, large_batch=True),
    "12": figure12_13.run,
    "13": figure12_13.run,
    "14": figure14.run,
    "15": figure15.run,
    "17": figure17.run,
    "19": lambda scale: figure19_20.run(scale, large_batch=False),
    "20": lambda scale: figure19_20.run(scale, large_batch=True),
    "21": figure21.run,
}


def _print_result(figure: str, result: dict) -> None:
    print(f"==== Figure {figure} ====")
    if "rows" in result:
        print(format_table(result["rows"]))
    if "per_model" in result:
        for model, payload in result["per_model"].items():
            print(f"-- {model} --")
            print(format_table(payload["rows"]))
            if payload.get("summary"):
                print(format_summary(payload["summary"], title=f"{model} summary"))
    for key in ("static", "dynamic"):
        if key in result and isinstance(result[key], dict) and "rows" in result[key]:
            print(f"-- {key} tiling --")
            print(format_table(result[key]["rows"]))
            print(format_summary(result[key]["summary"], title=f"{key} summary"))
    flat_summary = {k: v for k, v in result.items()
                    if isinstance(v, (int, float, str, bool))}
    if flat_summary:
        print(format_summary(flat_summary, title="headline"))
    for key in ("speedup_by_variance", "geomean_normalized"):
        if key in result:
            print(format_summary(result[key], title=key))
    print()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Regenerate the paper's figures")
    parser.add_argument("--figure", action="append", default=None,
                        help="figure number to run (repeatable); default: all")
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument("--smoke", action="store_true",
                        help="use the tiny smoke-test scale")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="also dump raw results to this JSON file")
    args = parser.parse_args(argv)

    scale = SMOKE_SCALE if args.smoke else DEFAULT_SCALE
    figures = args.figure if args.figure else sorted(FIGURES, key=lambda f: int(f))
    if args.all:
        figures = sorted(FIGURES, key=lambda f: int(f))

    collected = {}
    for figure in figures:
        if figure not in FIGURES:
            print(f"unknown figure {figure!r}; available: {sorted(FIGURES)}", file=sys.stderr)
            return 2
        started = time.time()
        result = FIGURES[figure](scale)
        result["elapsed_seconds"] = round(time.time() - started, 2)
        collected[figure] = result
        _print_result(figure, result)

    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(collected, handle, indent=2, default=str)
        print(f"raw results written to {args.json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
