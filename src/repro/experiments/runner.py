"""Command-line runner for the figure experiments.

Usage::

    python -m repro.experiments.runner --figure 9          # one figure
    python -m repro.experiments.runner --all               # everything
    python -m repro.experiments.runner --figure 14 --smoke # fast, tiny scale
    python -m repro.experiments.runner --figure 15 --jobs 4   # pooled sweep
    python -m repro.experiments.runner --all --no-cache       # force re-simulation

Sweep-shaped figures execute through :class:`repro.sweep.SweepRunner`:
``--jobs N`` fans design points out over N worker processes and results are
memoized in an on-disk cache (``--cache-dir``, default
``~/.cache/repro/sweeps`` or ``$REPRO_SWEEP_CACHE``), so an immediate re-run
completes without re-simulating.  ``--no-cache`` disables the cache.

Each experiment prints the regenerated rows and the headline summary the paper
quotes; EXPERIMENTS.md records a captured run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, Optional

from ..sweep import ResultCache, SweepRunner, SweepStats, default_cache_root
from . import (figure1,
    figure8,
    figure9_10,
    figure12_13,
    figure14,
    figure15,
    figure17,
    figure19_20,
    figure21,
    capacity,
    fleet_latency,
    memory_pressure,
    policy_shootout,
    serve_latency)
from .common import DEFAULT_SCALE, SMOKE_SCALE, ExperimentScale
from .report import format_summary, format_table

#: figure id -> callable(scale, sweep_runner) -> result dictionary
FIGURES: Dict[str, Callable[[ExperimentScale, Optional[SweepRunner]], dict]] = {
    "1": lambda scale, runner: figure1.run(scale),
    "8": lambda scale, runner: figure8.run(scale),
    "9": lambda scale, runner: figure9_10.run(scale, large_batch=False, runner=runner),
    "10": lambda scale, runner: figure9_10.run(scale, large_batch=True, runner=runner),
    "12": lambda scale, runner: figure12_13.run(scale, runner=runner),
    "13": lambda scale, runner: figure12_13.run(scale, runner=runner),
    "14": lambda scale, runner: figure14.run(scale, runner=runner),
    "15": lambda scale, runner: figure15.run(scale, runner=runner),
    "17": lambda scale, runner: figure17.run(scale, runner=runner),
    "19": lambda scale, runner: figure19_20.run(scale, large_batch=False, runner=runner),
    "20": lambda scale, runner: figure19_20.run(scale, large_batch=True, runner=runner),
    "21": lambda scale, runner: figure21.run(scale, runner=runner),
}

#: named (non-figure) experiments, addressed positionally: the serving side
NAMED: Dict[str, Callable[[ExperimentScale, Optional[SweepRunner]], dict]] = {
    "capacity": lambda scale, runner: capacity.run(scale, runner=runner),
    "serve-latency": lambda scale, runner: serve_latency.run(scale, runner=runner),
    "fleet-latency": lambda scale, runner: fleet_latency.run(scale, runner=runner),
    "memory-pressure": lambda scale, runner: memory_pressure.run(scale,
                                                                 runner=runner),
    "policy-shootout": lambda scale, runner: policy_shootout.run(scale,
                                                                 runner=runner),
}

#: every runnable experiment: figures by number plus the named experiments
EXPERIMENTS: Dict[str, Callable[[ExperimentScale, Optional[SweepRunner]], dict]] = {
    **FIGURES, **NAMED,
}


def _experiment_order(name: str) -> tuple:
    """Figures first (numerically), then named experiments alphabetically."""
    return (0, int(name), "") if name.isdigit() else (1, 0, name)


def _print_result(figure: str, result: dict) -> None:
    title = f"Figure {figure}" if figure.isdigit() else figure
    print(f"==== {title} ====")
    if "rows" in result:
        print(format_table(result["rows"]))
    if "per_model" in result:
        for model, payload in result["per_model"].items():
            print(f"-- {model} --")
            print(format_table(payload["rows"]))
            if payload.get("summary"):
                print(format_summary(payload["summary"], title=f"{model} summary"))
    for key in ("static", "dynamic"):
        if key in result and isinstance(result[key], dict) and "rows" in result[key]:
            print(f"-- {key} tiling --")
            print(format_table(result[key]["rows"]))
            print(format_summary(result[key]["summary"], title=f"{key} summary"))
    flat_summary = {k: v for k, v in result.items()
                    if isinstance(v, (int, float, str, bool))}
    if flat_summary:
        print(format_summary(flat_summary, title="headline"))
    for key in ("speedup_by_variance", "geomean_normalized"):
        if key in result:
            print(format_summary(result[key], title=key))
    print()


def _print_listing() -> None:
    """The ``--list`` output: experiments, scenarios and platforms by name."""
    from ..api import experiment_descriptions, get_platform, platform_names, \
        scenario_descriptions

    def section(title: str, entries: Dict[str, str]) -> None:
        print(title)
        width = max(len(name) for name in entries)
        for name, description in entries.items():
            print(f"  {name:<{width}}  {description}")
        print()

    section("Experiments (python -m repro.experiments NAME, "
            "repro.api.experiment(NAME)):", experiment_descriptions())
    section("Scenarios (repro.api.run(NAME)):", scenario_descriptions())
    section("Platforms (repro.api.get_platform(NAME), Scenario(platforms=...)):",
            {name: get_platform(name).description for name in platform_names()})


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's figures and the serving experiments")
    parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help="figure number or named experiment to run "
                             f"(named: {sorted(NAMED)}); default: every figure")
    parser.add_argument("--figure", action="append", default=None,
                        help="figure number to run (repeatable); default: all")
    parser.add_argument("--all", action="store_true",
                        help="run every figure and named experiment")
    parser.add_argument("--list", action="store_true",
                        help="list registered experiments, scenarios and "
                             "platforms with descriptions, then exit")
    parser.add_argument("--scale", choices=("default", "smoke"), default=None,
                        help="experiment scale preset (default: default)")
    parser.add_argument("--smoke", action="store_true",
                        help="use the tiny smoke-test scale (same as --scale smoke)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="also dump raw results to this JSON file")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for sweep execution "
                             "(default: $REPRO_SWEEP_JOBS or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk sweep result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help=f"sweep cache directory (default: {default_cache_root()})")
    args = parser.parse_args(argv)

    if args.list:
        _print_listing()
        return 0

    scale = SMOKE_SCALE if (args.smoke or args.scale == "smoke") else DEFAULT_SCALE
    figures = list(args.experiments) + list(args.figure or [])
    if not figures:
        figures = sorted(FIGURES, key=_experiment_order)
    if args.all:
        figures = sorted(EXPERIMENTS, key=_experiment_order)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    sweep_runner = SweepRunner(jobs=args.jobs, cache=cache)

    collected = {}
    for figure in figures:
        if figure not in EXPERIMENTS:
            print(f"unknown experiment {figure!r}; available: "
                  f"{sorted(EXPERIMENTS, key=_experiment_order)}", file=sys.stderr)
            return 2
        started = time.time()
        before = SweepStats()
        before.add(sweep_runner.cumulative_stats)
        result = EXPERIMENTS[figure](scale, sweep_runner)
        result["elapsed_seconds"] = round(time.time() - started, 2)
        total = sweep_runner.cumulative_stats
        if total.points > before.points:
            result["sweep_stats"] = {
                "points": total.points - before.points,
                "simulated": total.simulated - before.simulated,
                "cache_hits": total.cache_hits - before.cache_hits,
                "jobs": sweep_runner.jobs,
            }
            print(f"[sweep] {result['sweep_stats']['points']} points, "
                  f"{result['sweep_stats']['simulated']} simulated, "
                  f"{result['sweep_stats']['cache_hits']} from cache "
                  f"(jobs={sweep_runner.jobs})")
        collected[figure] = result
        _print_result(figure, result)

    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(collected, handle, indent=2, default=str)
        print(f"raw results written to {args.json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
