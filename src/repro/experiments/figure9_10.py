"""Figures 9, 10, 19 and 20 — dynamic tiling versus the static-tiling Pareto frontier.

For each model (Mixtral-8x7B-like, Qwen3-30B-A3B-like) and batch size, the MoE
layer is simulated with a sweep of static batch-tile sizes and with dynamic
tiling.  The rows carry latency (cycles), on-chip memory and off-chip traffic;
Figures 9/10 plot latency versus memory, Figures 19/20 traffic versus memory.
The headline metric is the Pareto Improvement Distance of the dynamic-tiling
point over the static frontier (Section 5.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.pareto import (ParetoPoint, memory_saving_at_matched_performance,
                               pareto_improvement_distance, speedup_at_matched_memory)
from ..sweep import SweepRunner, SweepSpec, resolve_runner
from ..workloads.configs import ModelConfig
from .common import (DEFAULT_SCALE, ExperimentScale, hardware, mixtral_model, moe_routing,
                     qwen_model)


def tile_sweep_spec(model: ModelConfig, batch: int, tiles: Sequence[int],
                    scale: ExperimentScale) -> SweepSpec:
    """The static tile sweep plus the dynamic-tiling point as a sweep grid."""
    assignments = [list(a) for a in moe_routing(model, batch, scale)]
    return SweepSpec(
        name=f"fig9_10-{model.name}-b{batch}",
        task="moe_layer",
        base={"model": model, "batch": batch, "assignments": assignments,
              "hardware": hardware(scale)},
        axes={"tile_rows": list(tiles) + [None]},
        seed=scale.seed,
    )


def sweep_model(model: ModelConfig, batch: int, tiles: Sequence[int],
                scale: ExperimentScale, runner: Optional[SweepRunner] = None) -> List[dict]:
    """Simulate the static tile sweep plus the dynamic-tiling point."""
    spec = tile_sweep_spec(model, batch, tiles, scale)
    rows: List[dict] = []
    for result in resolve_runner(runner).run(spec):
        tile = result.point.kwargs()["tile_rows"]
        rows.append({
            "model": model.name,
            "batch": batch,
            "tiling": "dynamic" if tile is None else f"tile={tile}",
            "tile_rows": tile,
            "cycles": result["cycles"],
            "onchip_memory_bytes": result["onchip_memory_bytes"],
            "offchip_traffic_bytes": result["offchip_traffic_bytes"],
            "total_flops": result["total_flops"],
        })
    return rows


def summarize(rows: Sequence[dict], memory_key: str = "onchip_memory_bytes",
              cycles_key: str = "cycles") -> dict:
    """PID and matched-point comparisons of the dynamic point versus the static frontier."""
    static_points = [ParetoPoint(row[cycles_key], row[memory_key], row["tiling"])
                     for row in rows if row["tile_rows"] is not None]
    dynamic_rows = [row for row in rows if row["tile_rows"] is None]
    if not dynamic_rows or not static_points:
        return {}
    dynamic_point = ParetoPoint(dynamic_rows[0][cycles_key], dynamic_rows[0][memory_key],
                                "dynamic")
    return {
        "pid": pareto_improvement_distance(dynamic_point, static_points),
        "speedup_at_matched_memory": speedup_at_matched_memory(dynamic_point, static_points),
        "memory_saving_at_matched_performance":
            memory_saving_at_matched_performance(dynamic_point, static_points),
    }


def run(scale: ExperimentScale = DEFAULT_SCALE, large_batch: bool = False,
        runner: Optional[SweepRunner] = None) -> Dict[str, object]:
    """Regenerate Figure 9 (``large_batch=False``) or Figure 10 (``True``)."""
    batch = scale.moe_large_batch if large_batch else scale.moe_batch
    tiles = scale.moe_tiles_large_batch if large_batch else scale.moe_tiles_small_batch
    tiles = [t for t in tiles if t <= max(batch, 1)]
    results: Dict[str, object] = {"figure": "10" if large_batch else "9", "per_model": {}}
    for model in (mixtral_model(scale), qwen_model(scale)):
        rows = sweep_model(model, batch, tiles, scale, runner=runner)
        results["per_model"][model.name] = {
            "rows": rows,
            "summary": summarize(rows),
            "traffic_summary": summarize(rows, memory_key="onchip_memory_bytes",
                                         cycles_key="offchip_traffic_bytes"),
        }
    return results
