"""Figures 9, 10, 19 and 20 — dynamic tiling versus the static-tiling Pareto frontier.

For each model (Mixtral-8x7B-like, Qwen3-30B-A3B-like) and batch size, the MoE
layer is simulated with a sweep of static batch-tile sizes and with dynamic
tiling.  The rows carry latency (cycles), on-chip memory and off-chip traffic;
Figures 9/10 plot latency versus memory, Figures 19/20 traffic versus memory.
The headline metric is the Pareto Improvement Distance of the dynamic-tiling
point over the static frontier (Section 5.2).

The experiment is expressed through the unified scenario API: one
:class:`~repro.api.Scenario` holds both models as
:class:`~repro.api.MoEWorkload`\\ s and the tile grid as unified
:class:`~repro.schedules.Schedule`\\ s (also registered as ``"figure9"`` /
``"figure10"`` in :mod:`repro.api.library`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.pareto import (ParetoPoint, memory_saving_at_matched_performance,
                               pareto_improvement_distance, speedup_at_matched_memory)
from ..api import MoEWorkload, Scenario
from ..api import run as run_scenario
from ..api.library import tiling_schedules
from ..sweep import SweepRunner, resolve_runner
from .common import (DEFAULT_SCALE, ExperimentScale, platform, mixtral_model, moe_routing,
                     qwen_model)


def scenario(scale: ExperimentScale, large_batch: bool = False) -> Scenario:
    """The Figure 9 (``large_batch=False``) / Figure 10 (``True``) grid."""
    batch = scale.moe_large_batch if large_batch else scale.moe_batch
    tiles = scale.moe_tiles_large_batch if large_batch else scale.moe_tiles_small_batch
    tiles = [t for t in tiles if t <= max(batch, 1)]
    workloads = {
        model.name: MoEWorkload(
            model=model, batch=batch,
            assignments=[list(a) for a in moe_routing(model, batch, scale)])
        for model in (mixtral_model(scale), qwen_model(scale))
    }
    return Scenario(
        name=f"figure{'10' if large_batch else '9'}-{scale.name}",
        workloads=workloads,
        schedules=tiling_schedules(tiles),
        platforms=platform(scale),
        seed=scale.seed,
        description="MoE static-tile sweep vs dynamic tiling (Pareto frontier)",
    )


def summarize(rows: Sequence[dict], memory_key: str = "onchip_memory_bytes",
              cycles_key: str = "cycles") -> dict:
    """PID and matched-point comparisons of the dynamic point versus the static frontier."""
    static_points = [ParetoPoint(row[cycles_key], row[memory_key], row["tiling"])
                     for row in rows if row["tile_rows"] is not None]
    dynamic_rows = [row for row in rows if row["tile_rows"] is None]
    if not dynamic_rows or not static_points:
        return {}
    dynamic_point = ParetoPoint(dynamic_rows[0][cycles_key], dynamic_rows[0][memory_key],
                                "dynamic")
    return {
        "pid": pareto_improvement_distance(dynamic_point, static_points),
        "speedup_at_matched_memory": speedup_at_matched_memory(dynamic_point, static_points),
        "memory_saving_at_matched_performance":
            memory_saving_at_matched_performance(dynamic_point, static_points),
    }


def run(scale: ExperimentScale = DEFAULT_SCALE, large_batch: bool = False,
        runner: Optional[SweepRunner] = None) -> Dict[str, object]:
    """Regenerate Figure 9 (``large_batch=False``) or Figure 10 (``True``)."""
    batch = scale.moe_large_batch if large_batch else scale.moe_batch
    sc = scenario(scale, large_batch=large_batch)
    result = run_scenario(sc, runner=resolve_runner(runner))
    results: Dict[str, object] = {"figure": "10" if large_batch else "9", "per_model": {}}
    for model_name in sc.workloads:
        rows: List[dict] = []
        for schedule_key, metrics in result.for_workload(model_name).items():
            tile = sc.schedules[schedule_key].moe_tile_rows
            rows.append({
                "model": model_name,
                "batch": batch,
                "tiling": "dynamic" if tile is None else f"tile={tile}",
                "tile_rows": tile,
                "cycles": metrics["cycles"],
                "onchip_memory_bytes": metrics["onchip_memory_bytes"],
                "offchip_traffic_bytes": metrics["offchip_traffic_bytes"],
                "total_flops": metrics["total_flops"],
            })
        results["per_model"][model_name] = {
            "rows": rows,
            "summary": summarize(rows),
            "traffic_summary": summarize(rows, memory_key="onchip_memory_bytes",
                                         cycles_key="offchip_traffic_bytes"),
        }
    return results
