"""Max sustainable load under an SLO — the capacity experiment.

Walks the serving load ladder (``scale.serve_rates``) across
``scale.capacity_platforms`` under production-shaped traffic from a
registered generator (``scale.capacity_generator``, heavy-tailed by
default — see :mod:`repro.serve.generators`) and asks, per platform: what
is the **highest offered rate whose SLO attainment still clears the
target**?  Attainment is the fraction of completions whose TTFT met
``scale.capacity_ttft_slo``; a rate is *sustainable* when that fraction is
at least ``scale.capacity_attainment``.

The answer is the capacity headline operators actually provision against:
plain throughput keeps rising past saturation (every request completes
eventually), but attainment cliffs once queueing delay pushes
time-to-first-token over budget, so the sustainable rate is a sharp,
platform-dependent knee.  Capacity-bounded platforms (finite HBM) knee
earlier than the unbounded baseline because admission stalls and
preemptions inflate TTFT before compute saturates.

The whole study is **one** declarative record: :func:`spec` builds the
platforms × rates grid as a single cartesian :class:`~repro.sweep.SweepSpec`
over the ``"serve"`` task (:func:`repro.serve.sweep.capacity_spec`),
registered as the ``"capacity"`` experiment, and :func:`run` post-processes
it into per-platform attainment curves plus the max-sustainable-rate
summary.  Points are cached and pool-parallel like every figure sweep, and
the experiment is deterministic — the same scale and seed reproduce every
metric bit-for-bit.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..api.experiment import ExperimentSpec, register_experiment
from ..schedules import Schedule
from ..serve.library import SMOKE_LENGTHS, _serve_model
from ..serve.sweep import capacity_spec
from ..sweep import SweepRunner, SweepSpec, resolve_runner
from .common import DEFAULT_SCALE, ExperimentScale, resolve_scale

#: the per-rate metrics each platform's curve reports
_ROW_METRICS = ("slo_attainment", "slo_goodput_rpmc", "goodput_rpmc",
                "ttft_p99", "e2e_p99", "queue_queued_max")


def spec(scale: ExperimentScale = DEFAULT_SCALE, **overrides) -> SweepSpec:
    """The capacity study (platforms × rates) as one spec.

    ``overrides`` forward to :func:`repro.serve.sweep.capacity_spec`
    (``rates``, ``platforms``, ``generator``, ``num_requests``,
    ``report_mode`` …).
    """
    scale = resolve_scale(scale)
    model = _serve_model(scale.model_scale, max_experts=scale.serve_max_experts)
    kwargs = dict(rates=scale.serve_rates,
                  platforms=list(scale.capacity_platforms),
                  ttft_slo=scale.capacity_ttft_slo,
                  generator=scale.capacity_generator,
                  batch_cap=scale.serve_batch_cap,
                  num_requests=scale.serve_requests, seed=scale.seed,
                  num_layers=scale.serve_layers,
                  name=f"capacity-{scale.name}", **SMOKE_LENGTHS)
    kwargs.update(overrides)
    return capacity_spec(model, Schedule.dynamic(), **kwargs)


@register_experiment("capacity",
                     "max sustainable offered load vs TTFT-SLO attainment "
                     "across platforms under heavy-tailed traffic")
def _capacity_experiment(scale="default", **overrides) -> ExperimentSpec:
    return ExperimentSpec(
        name="capacity",
        description="max sustainable offered load vs TTFT-SLO attainment "
                    "across platforms under heavy-tailed traffic",
        sweep=spec(resolve_scale(scale), **overrides))


def run(scale: ExperimentScale = DEFAULT_SCALE,
        runner: Optional[SweepRunner] = None) -> Dict[str, object]:
    """Regenerate the attainment-vs-load curves at the given experiment scale."""
    scale = resolve_scale(scale)
    runner = resolve_runner(runner)
    grid = spec(scale)
    metrics = runner.metrics(grid)

    # the grid is platform-major (see capacity_spec); one slice per platform
    # covers its rate ladder
    labels = list(scale.capacity_platforms)
    rates = list(scale.serve_rates)
    per_platform: Dict[str, List[Dict[str, float]]] = {
        label: metrics[i * len(rates):(i + 1) * len(rates)]
        for i, label in enumerate(labels)}

    rows: List[Dict[str, float]] = []
    for j, rate in enumerate(rates):
        row: Dict[str, float] = {"rate": float(rate)}
        for label, series in per_platform.items():
            for key in _ROW_METRICS:
                row[f"{label}_{key}"] = series[j][key]
        rows.append(row)

    # per platform: the highest swept rate whose attainment clears the
    # target (0.0 when even the lowest rate misses it)
    target = float(scale.capacity_attainment)
    summary: Dict[str, Dict[str, float]] = {}
    for label, series in per_platform.items():
        attainment = [m["slo_attainment"] for m in series]
        sustainable = [j for j, a in enumerate(attainment) if a >= target]
        knee = sustainable[-1] if sustainable else None
        summary[label] = {
            "max_sustainable_rate": float(rates[knee]) if knee is not None else 0.0,
            "attainment_at_knee": attainment[knee] if knee is not None else 0.0,
            "attainment_at_peak_load": attainment[-1],
            "slo_goodput_at_knee": (series[knee]["slo_goodput_rpmc"]
                                    if knee is not None else 0.0),
        }

    return {
        "rows": rows,
        "platforms": labels,
        "generator": scale.capacity_generator,
        "ttft_slo": scale.capacity_ttft_slo,
        "attainment_target": target,
        "num_requests": scale.serve_requests,
        "summary": summary,
    }


def bisect_knee(sustainable: Callable[[int], bool],
                num_rates: int) -> Tuple[Optional[int], int]:
    """Binary-search a rate ladder for its SLO knee.

    ``sustainable(j)`` answers whether rung ``j`` of an ascending ladder of
    ``num_rates`` offered rates still clears the attainment target.  Under
    the capacity experiment's premise — attainment is monotone non-increasing
    in offered load — the sustainable rungs form a prefix, so the knee (the
    *last* sustainable index, exactly what :func:`run` reads off the full
    grid) is found in ``O(log num_rates)`` probes instead of ``num_rates``.

    Returns ``(knee_index, evaluations)``; the index is ``None`` when even
    the lowest rung misses the target.
    """
    lo, hi = 0, num_rates - 1
    best: Optional[int] = None
    evaluations = 0
    while lo <= hi:
        mid = (lo + hi) // 2
        evaluations += 1
        if sustainable(mid):
            best = mid
            lo = mid + 1
        else:
            hi = mid - 1
    return best, evaluations


def run_adaptive(scale: ExperimentScale = DEFAULT_SCALE,
                 runner: Optional[SweepRunner] = None,
                 **overrides) -> Dict[str, object]:
    """The capacity summary by bisection instead of the full rate grid.

    Per platform, probes single ``(platform, rate)`` points of the *same*
    ``"serve"`` task with the *same* base knobs as :func:`spec` — each probe
    is one-point :class:`~repro.sweep.SweepSpec`, so its cache entry is
    shared with the full grid (spec names are excluded from cache keys) —
    and bisects the rate ladder for the knee.  ``overrides`` forward to
    :func:`spec` exactly as in :func:`run`'s grid.

    The summary matches :func:`run`'s per-platform fields (same knee on
    monotone attainment curves — pinned by
    ``tests/experiments/test_capacity_adaptive.py``) plus the probe counts;
    the peak rung is evaluated when the bisection did not already touch it,
    so ``attainment_at_peak_load`` stays comparable.
    """
    scale = resolve_scale(scale)
    runner = resolve_runner(runner)
    rates = [float(r) for r in scale.serve_rates]
    labels = list(scale.capacity_platforms)
    target = float(scale.capacity_attainment)

    total_evaluations = 0
    summary: Dict[str, Dict[str, float]] = {}
    for label in labels:
        evaluated: Dict[int, Dict[str, float]] = {}

        def probe(j: int, label: str = label,
                  evaluated: Dict[int, Dict[str, float]] = evaluated
                  ) -> Dict[str, float]:
            if j not in evaluated:
                point = spec(scale, platforms=[label], rates=[rates[j]],
                             **overrides)
                evaluated[j] = runner.metrics(point)[0]
            return evaluated[j]

        knee, evaluations = bisect_knee(
            lambda j: probe(j)["slo_attainment"] >= target, len(rates))
        peak = len(rates) - 1
        if peak not in evaluated:
            probe(peak)
            evaluations += 1
        total_evaluations += evaluations

        summary[label] = {
            "max_sustainable_rate": rates[knee] if knee is not None else 0.0,
            "attainment_at_knee": (evaluated[knee]["slo_attainment"]
                                   if knee is not None else 0.0),
            "attainment_at_peak_load": evaluated[peak]["slo_attainment"],
            "slo_goodput_at_knee": (evaluated[knee]["slo_goodput_rpmc"]
                                    if knee is not None else 0.0),
            "evaluations": float(evaluations),
        }

    return {
        "platforms": labels,
        "rates": rates,
        "generator": scale.capacity_generator,
        "ttft_slo": scale.capacity_ttft_slo,
        "attainment_target": target,
        "num_requests": scale.serve_requests,
        "summary": summary,
        "total_evaluations": total_evaluations,
        "grid_points": len(labels) * len(rates),
    }
