"""``python -m repro.experiments`` — alias for the figure experiment runner.

The canonical entry point used by CI's API-surface smoke job::

    python -m repro.experiments --figure 9 --scale smoke
"""

from .runner import main

if __name__ == "__main__":
    raise SystemExit(main())
