"""Figure 15 — dynamic versus static coarse-grained parallelization across batch sizes.

Static coarse-grained parallelization assigns a fixed block of 16 requests per
region, so small batches leave most regions idle; dynamic parallelization keeps
all regions busy (2.72x faster at batch 16 in the paper) and stays ahead even
at batch 64 due to load imbalance.
"""

from __future__ import annotations

from typing import Dict, List

from ..data.kv_traces import VarianceClass
from ..sim import simulate
from ..workloads.attention import AttentionConfig, build_attention_layer
from .common import DEFAULT_SCALE, ExperimentScale, hardware, kv_batches, qwen_model


def run(scale: ExperimentScale = DEFAULT_SCALE) -> Dict[str, object]:
    """Regenerate the Figure 15 batch-size sweep."""
    model = qwen_model(scale)
    max_batch = scale.attention_batch
    batches = kv_batches(scale, max_batch)
    base_trace = list(batches[VarianceClass.MEDIUM][0])
    hw = hardware(scale)
    step = max(max_batch // 4, 1)
    rows: List[dict] = []
    for batch in range(step, max_batch + 1, step):
        lengths = base_trace[:batch]
        results = {}
        for strategy in ("coarse", "dynamic"):
            config = AttentionConfig(model=model, batch=batch, strategy=strategy,
                                     kv_tile_rows=64, coarse_chunk=16)
            program = build_attention_layer(config)
            report = simulate(program.program, program.inputs(lengths), hardware=hw)
            results[strategy] = report.cycles
        rows.append({
            "batch": batch,
            "coarse_cycles": results["coarse"],
            "dynamic_cycles": results["dynamic"],
            "speedup": results["coarse"] / results["dynamic"],
        })
    return {
        "rows": rows,
        "max_speedup": max(row["speedup"] for row in rows),
        "smallest_batch_speedup": rows[0]["speedup"],
        "largest_batch_speedup": rows[-1]["speedup"],
    }
