"""Figure 15 — dynamic versus static coarse-grained parallelization across batch sizes.

Static coarse-grained parallelization assigns a fixed block of 16 requests per
region, so small batches leave most regions idle; dynamic parallelization keeps
all regions busy (2.72x faster at batch 16 in the paper) and stays ahead even
at batch 64 due to load imbalance.

The batch sizes are the scenario's workloads (every
:class:`~repro.api.AttentionWorkload` shares one medium-variance base trace,
truncated to its batch) and the two strategies its schedules.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..api import AttentionWorkload, Scenario
from ..api import run as run_scenario
from ..data.kv_traces import VarianceClass
from ..sweep import SweepRunner, resolve_runner
from .common import DEFAULT_SCALE, ExperimentScale, platform, kv_batches, qwen_model
from .figure14 import strategy_schedules

_STRATEGIES = ("coarse", "dynamic")


def batch_sizes(scale: ExperimentScale) -> List[int]:
    """The swept batch sizes (evenly spaced up to the attention batch)."""
    max_batch = scale.attention_batch
    step = max(max_batch // scale.batch_sweep_points, 1)
    return list(range(step, max_batch + 1, step))


def scenario(scale: ExperimentScale) -> Scenario:
    """The Figure 15 (batch size × strategy) grid as one scenario."""
    model = qwen_model(scale)
    base_trace = list(kv_batches(scale, scale.attention_batch)[VarianceClass.MEDIUM][0])
    workloads = {
        f"b{batch}": AttentionWorkload(model=model, batch=batch, lengths=base_trace,
                                       kv_tile_rows=64)
        for batch in batch_sizes(scale)
    }
    return Scenario(
        name=f"figure15-{scale.name}",
        workloads=workloads,
        schedules=strategy_schedules(_STRATEGIES),
        platforms=platform(scale),
        seed=scale.seed,
        description="dynamic vs static coarse-grained parallelization across batches",
    )


def run(scale: ExperimentScale = DEFAULT_SCALE,
        runner: Optional[SweepRunner] = None) -> Dict[str, object]:
    """Regenerate the Figure 15 batch-size sweep."""
    result = run_scenario(scenario(scale), runner=resolve_runner(runner))

    rows: List[dict] = []
    for batch in batch_sizes(scale):
        cell = result.for_workload(f"b{batch}")
        coarse, dynamic = cell["coarse"]["cycles"], cell["dynamic"]["cycles"]
        rows.append({
            "batch": batch,
            "coarse_cycles": coarse,
            "dynamic_cycles": dynamic,
            "speedup": coarse / dynamic,
        })
    return {
        "rows": rows,
        "max_speedup": max(row["speedup"] for row in rows),
        "smallest_batch_speedup": rows[0]["speedup"],
        "largest_batch_speedup": rows[-1]["speedup"],
    }
