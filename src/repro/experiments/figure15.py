"""Figure 15 — dynamic versus static coarse-grained parallelization across batch sizes.

Static coarse-grained parallelization assigns a fixed block of 16 requests per
region, so small batches leave most regions idle; dynamic parallelization keeps
all regions busy (2.72x faster at batch 16 in the paper) and stays ahead even
at batch 64 due to load imbalance.

The (batch, strategy) grid is expressed as a cartesian :class:`SweepSpec` over
the ``attention_layer`` task; every point shares the same medium-variance base
trace, which the task truncates to the point's batch size.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..data.kv_traces import VarianceClass
from ..sweep import SweepRunner, SweepSpec, resolve_runner
from .common import DEFAULT_SCALE, ExperimentScale, hardware, kv_batches, qwen_model

_STRATEGIES = ("coarse", "dynamic")


def batch_sweep_spec(scale: ExperimentScale) -> SweepSpec:
    """The Figure 15 batch-size x strategy grid."""
    model = qwen_model(scale)
    max_batch = scale.attention_batch
    base_trace = list(kv_batches(scale, max_batch)[VarianceClass.MEDIUM][0])
    step = max(max_batch // scale.batch_sweep_points, 1)
    return SweepSpec(
        name=f"fig15-{model.name}",
        task="attention_layer",
        base={"model": model, "lengths": base_trace, "kv_tile_rows": 64,
              "coarse_chunk": 16, "hardware": hardware(scale)},
        axes={"batch": list(range(step, max_batch + 1, step)),
              "strategy": list(_STRATEGIES)},
        seed=scale.seed,
    )


def run(scale: ExperimentScale = DEFAULT_SCALE,
        runner: Optional[SweepRunner] = None) -> Dict[str, object]:
    """Regenerate the Figure 15 batch-size sweep."""
    spec = batch_sweep_spec(scale)
    cycles: Dict[tuple, float] = {}
    for result in resolve_runner(runner).run(spec):
        kwargs = result.point.kwargs()
        cycles[(kwargs["batch"], kwargs["strategy"])] = result["cycles"]

    rows: List[dict] = []
    for batch in spec.axes["batch"]:
        coarse, dynamic = cycles[(batch, "coarse")], cycles[(batch, "dynamic")]
        rows.append({
            "batch": batch,
            "coarse_cycles": coarse,
            "dynamic_cycles": dynamic,
            "speedup": coarse / dynamic,
        })
    return {
        "rows": rows,
        "max_speedup": max(row["speedup"] for row in rows),
        "smallest_batch_speedup": rows[0]["speedup"],
        "largest_batch_speedup": rows[-1]["speedup"],
    }
