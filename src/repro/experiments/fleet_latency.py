"""Fleet serving latency versus replica count — the cluster-scale experiment.

Sweeps replica counts × routing policies × a ladder of Poisson arrival rates
(``scale.fleet_replicas`` / ``scale.fleet_routings`` / ``scale.serve_rates``)
through the multi-replica dispatcher (:mod:`repro.serve.fleet`) under the
dynamic schedule and reports, per (replicas, routing, rate) cell, the
fleet-level TTFT / e2e percentiles, goodput, per-replica utilization and load
imbalance.  The curves show how replication moves the queueing knee: a fleet
of N pushes the saturation rate out by roughly N× while load-aware routing
(least-loaded / least-kv) holds the imbalance down where round-robin drifts.

The whole study is **one** declarative record: :func:`spec` builds the grid
as a single cartesian :class:`~repro.sweep.SweepSpec` over the ``"fleet"``
task (:func:`repro.serve.sweep.fleet_latency_spec`), registered as the
``"fleet-latency"`` experiment — ``repro.api.experiment("fleet-latency")``
returns it as a JSON-serializable :class:`~repro.api.ExperimentSpec` and
:func:`run` post-processes the same grid into per-replica-count curves.
Points are cached and pool-parallel like every figure sweep; the traffic
seed is shared by every point, and the experiment is deterministic — the
same scale and seed reproduce every metric bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..api.experiment import ExperimentSpec, register_experiment
from ..serve.library import SMOKE_LENGTHS, _serve_model
from ..serve.sweep import fleet_latency_spec
from ..schedules import Schedule
from ..sweep import SweepRunner, SweepSpec, resolve_runner
from .common import DEFAULT_SCALE, ExperimentScale, platform, resolve_scale

#: the per-cell metrics each row of the curves reports
_ROW_METRICS = ("ttft_p50", "ttft_p95", "e2e_p95", "goodput_rpmc",
                "imbalance", "util_mean")


def spec(scale: ExperimentScale = DEFAULT_SCALE, **overrides) -> SweepSpec:
    """The fleet grid (replicas × routing × rates) as one spec.

    ``overrides`` forward to :func:`repro.serve.sweep.fleet_latency_spec`
    (``rates``, ``num_replicas``, ``routings``, ``warmup_cycles``,
    ``autoscaler``, ``num_requests``, ``seed``, ``platform`` …).
    """
    scale = resolve_scale(scale)
    model = _serve_model(scale.model_scale, max_experts=scale.serve_max_experts)
    kwargs = dict(rates=scale.serve_rates, num_replicas=scale.fleet_replicas,
                  routings=scale.fleet_routings,
                  batch_cap=scale.serve_batch_cap,
                  num_requests=scale.serve_requests, seed=scale.seed,
                  platform=platform(scale), num_layers=scale.serve_layers,
                  warmup_cycles=scale.fleet_warmup_cycles,
                  name=f"fleet-latency-{scale.name}", **SMOKE_LENGTHS)
    kwargs.update(overrides)
    return fleet_latency_spec(model, Schedule.dynamic(), **kwargs)


@register_experiment("fleet-latency",
                     "fleet serving latency vs replica count (multi-replica "
                     "dispatch, routing-policy comparison)")
def _fleet_latency_experiment(scale="default", **overrides) -> ExperimentSpec:
    return ExperimentSpec(
        name="fleet-latency",
        description="fleet serving latency vs replica count (multi-replica "
                    "dispatch, routing-policy comparison)",
        sweep=spec(resolve_scale(scale), **overrides))


def run(scale: ExperimentScale = DEFAULT_SCALE,
        runner: Optional[SweepRunner] = None) -> Dict[str, object]:
    """Regenerate the fleet latency curves at the given experiment scale."""
    scale = resolve_scale(scale)
    runner = resolve_runner(runner)
    grid = spec(scale)
    metrics = runner.metrics(grid)

    # the grid is replica-major then routing-major (see fleet_latency_spec);
    # one slice per (replicas, routing) pair covers its rate ladder
    replicas = list(scale.fleet_replicas)
    routings = list(scale.fleet_routings)
    rates = list(scale.serve_rates)
    rows: List[Dict[str, float]] = []
    for k, rate in enumerate(rates):
        row: Dict[str, float] = {"rate": float(rate)}
        for i, n in enumerate(replicas):
            for j, policy in enumerate(routings):
                cell = metrics[(i * len(routings) + j) * len(rates) + k]
                for key in _ROW_METRICS:
                    row[f"r{n}_{policy}_{key}"] = cell[key]
        rows.append(row)

    def _cell(n_idx: int, policy_idx: int, rate_idx: int) -> Dict[str, float]:
        return metrics[(n_idx * len(routings) + policy_idx) * len(rates) + rate_idx]

    # headline numbers at the heaviest load point, first routing policy:
    # what the largest fleet buys over a single replica
    single_peak = _cell(0, 0, len(rates) - 1)
    fleet_peak = _cell(len(replicas) - 1, 0, len(rates) - 1)
    return {
        "rows": rows,
        "replicas": replicas,
        "routings": routings,
        "batch_cap": scale.serve_batch_cap,
        "num_requests": scale.serve_requests,
        # goodput scaling from the smallest to the largest fleet at peak load
        "peak_goodput_scaling": (fleet_peak["goodput_rpmc"] /
                                 single_peak["goodput_rpmc"]
                                 if single_peak["goodput_rpmc"] > 0 else 0.0),
        # tail-latency relief from replication at peak load
        "peak_ttft_p95_speedup": (single_peak["ttft_p95"] /
                                  fleet_peak["ttft_p95"]
                                  if fleet_peak["ttft_p95"] > 0 else 0.0),
        # worst cross-replica imbalance of the largest fleet over the ladder
        "max_imbalance": max(
            _cell(len(replicas) - 1, j, k)["imbalance"]
            for j in range(len(routings)) for k in range(len(rates))),
    }
