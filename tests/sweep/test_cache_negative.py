"""Negative paths of the sweep result cache: corruption, races, staleness.

The cache is an optimization layered under every sweep; these tests pin the
contract that *nothing* that happens to the cache directory — truncated
writes, garbage bytes, wrong-shaped JSON, directories squatting on entry
paths, concurrent writers — may crash a sweep or hand back a bad payload.
Every negative path must degrade to a miss followed by a recompute (and the
recompute must repair the entry), and cache keys must change when the
simulator code changes so stale results cannot leak across code versions.
"""

import threading

import pytest

from repro.sweep import ResultCache, SweepRunner, SweepSpec
from repro.sweep import spec as spec_module
from repro.sweep.tasks import TASKS, register_task

PAYLOAD = {"cycles": 123.0, "offchip_traffic_bytes": 4.0}


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _corrupt(cache: ResultCache, key: str, data: bytes) -> None:
    path = cache.path_for(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(data)


class TestCorruptedEntries:
    def test_truncated_json_is_a_miss(self, cache):
        cache.put("k" * 64, PAYLOAD)
        path = cache.path_for("k" * 64)
        complete = path.read_bytes()
        path.write_bytes(complete[: len(complete) // 2])
        assert cache.get("k" * 64) is None
        assert cache.misses == 1

    def test_garbage_bytes_are_a_miss(self, cache):
        _corrupt(cache, "g" * 64, b"\x00\xff not json \x80")
        assert cache.get("g" * 64) is None

    def test_empty_file_is_a_miss(self, cache):
        _corrupt(cache, "e" * 64, b"")
        assert cache.get("e" * 64) is None

    def test_wrong_shape_json_is_a_miss(self, cache):
        # valid JSON that is not a metrics dictionary is still corruption
        _corrupt(cache, "l" * 64, b"[1, 2, 3]")
        assert cache.get("l" * 64) is None
        _corrupt(cache, "s" * 64, b'"just a string"')
        assert cache.get("s" * 64) is None

    def test_directory_on_entry_path_is_a_miss_not_a_crash(self, cache):
        key = "d" * 64
        cache.path_for(key).mkdir(parents=True)
        assert cache.get(key) is None
        # the store cannot replace a directory; it must stay silent, and the
        # next lookup still degrades to a miss
        cache.put(key, PAYLOAD)
        assert cache.get(key) is None

    def test_put_overwrites_a_corrupted_entry(self, cache):
        key = "o" * 64
        _corrupt(cache, key, b"{truncated")
        assert cache.get(key) is None
        cache.put(key, PAYLOAD)
        assert cache.get(key) == PAYLOAD


class TestRunnerFallback:
    """A sweep over a poisoned cache recomputes and repairs, never crashes."""

    def _spec(self):
        return SweepSpec(name="neg", task="workload_counting", axes={"value": [1, 2, 3]})

    @pytest.fixture(autouse=True)
    def counting_task(self):
        calls = {"count": 0}
        if "workload_counting" not in TASKS:
            @register_task("workload_counting")
            def workload_counting(value):
                TASKS["workload_counting"].calls["count"] += 1
                return {"value": float(value), "cycles": float(value) * 10.0}
            workload_counting.calls = calls
        TASKS["workload_counting"].calls = calls
        self.calls = calls

    def test_corrupted_entries_fall_back_to_recompute(self, cache):
        runner = SweepRunner(jobs=1, cache=cache)
        spec = self._spec()
        first = runner.metrics(spec)
        assert self.calls["count"] == 3
        # poison every entry on disk, in different ways
        for i, point in enumerate(spec.points()):
            data = [b"{bad", b"", b"[]"][i % 3]
            cache.path_for(point.cache_key()).write_bytes(data)
        second = SweepRunner(jobs=1, cache=cache).metrics(spec)
        assert second == first
        assert self.calls["count"] == 6  # all three recomputed ...
        third = SweepRunner(jobs=1, cache=cache).metrics(spec)
        assert third == first
        assert self.calls["count"] == 6  # ... and the entries were repaired

    def test_code_change_invalidates_stale_entries(self, cache, monkeypatch):
        runner = SweepRunner(jobs=1, cache=cache)
        spec = self._spec()
        baseline = runner.metrics(spec)
        assert self.calls["count"] == 3

        stale_keys = {p.cache_key() for p in spec.points()}
        # SweepPoint.cache_key resolves the fingerprint through the spec module
        monkeypatch.setattr(spec_module, "code_fingerprint",
                            lambda: "deadbeef-different-code")
        fresh_keys = {p.cache_key() for p in spec.points()}
        assert stale_keys.isdisjoint(fresh_keys), \
            "cache keys must change when the simulator sources change"
        # the stale entries are unreachable: the run re-simulates every point
        rerun = SweepRunner(jobs=1, cache=cache).metrics(spec)
        assert rerun == baseline
        assert self.calls["count"] == 6


class TestConcurrentWriters:
    def test_racing_puts_leave_one_complete_payload(self, cache):
        key = "r" * 64
        payloads = [{"cycles": float(i), "writer": float(i)} for i in range(8)]
        barrier = threading.Barrier(len(payloads))
        errors = []

        def writer(payload):
            try:
                barrier.wait()
                for _ in range(25):
                    cache.put(key, payload)
            except Exception as exc:  # pragma: no cover - the assertion target
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(p,)) for p in payloads]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        final = cache.get(key)
        assert final in payloads  # one winner, never a torn mix
        # and no leaked temp files from the atomic-write protocol
        leftovers = list(cache.path_for(key).parent.glob("*.tmp"))
        assert leftovers == []

    def test_concurrent_reader_never_sees_a_torn_entry(self, cache):
        key = "t" * 64
        stop = threading.Event()
        seen_bad = []

        def reader():
            while not stop.is_set():
                payload = cache.get(key)
                if payload is not None and "cycles" not in payload:
                    seen_bad.append(payload)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for i in range(200):
                cache.put(key, {"cycles": float(i), "padding": "x" * 256})
        finally:
            stop.set()
            thread.join()
        assert not seen_bad
        assert cache.get(key)["padding"] == "x" * 256


class TestClearAndAccounting:
    def test_clear_removes_corrupted_entries_too(self, cache):
        cache.put("a" * 64, PAYLOAD)
        _corrupt(cache, "b" * 64, b"{bad")
        assert len(cache) == 2
        assert cache.clear() == 2
        assert cache.get("a" * 64) is None

    def test_miss_accounting_covers_negative_paths(self, cache):
        cache.get("m" * 64)                      # absent
        _corrupt(cache, "m" * 64, b"{bad")
        cache.get("m" * 64)                      # corrupted
        cache.put("m" * 64, PAYLOAD)
        cache.get("m" * 64)                      # repaired
        assert (cache.misses, cache.hits, cache.stores) == (2, 1, 1)
