"""SweepSpec grid expansion, ordering and seed/cache-key stability."""

import pytest

from repro.core.errors import ConfigError
from repro.sweep import SweepSpec, task_accepts_seed
from repro.sweep.tasks import TASKS


@pytest.fixture
def seeded_task():
    """A temporarily registered task that consumes the derived seed."""
    name = "_spec_seeded_probe_task"
    TASKS[name] = lambda seed=0: {"seed": float(seed)}
    task_accepts_seed.cache_clear()
    yield name
    del TASKS[name]
    task_accepts_seed.cache_clear()


class TestGridExpansion:
    def test_cartesian_cross_product_in_order(self):
        spec = SweepSpec(name="s", task="workload",
                         axes={"a": [1, 2], "b": ["x", "y", "z"]})
        grid = spec.grid()
        assert len(grid) == len(spec) == 6
        assert grid[0] == {"a": 1, "b": "x"}
        assert grid[1] == {"a": 1, "b": "y"}
        assert grid[-1] == {"a": 2, "b": "z"}

    def test_zip_pairs_elementwise(self):
        spec = SweepSpec(name="s", task="workload", mode="zip",
                         axes={"a": [1, 2, 3], "b": ["x", "y", "z"]})
        assert spec.grid() == [{"a": 1, "b": "x"}, {"a": 2, "b": "y"},
                               {"a": 3, "b": "z"}]
        assert len(spec) == 3

    def test_no_axes_yields_single_point(self):
        spec = SweepSpec(name="s", task="workload", base={"a": 1})
        assert len(spec) == 1
        points = spec.points()
        assert len(points) == 1
        assert points[0].kwargs() == {"a": 1}

    def test_base_merged_into_every_point(self):
        spec = SweepSpec(name="s", task="workload", base={"c": 7},
                         axes={"a": [1, 2]})
        for point, expected in zip(spec.points(), (1, 2)):
            assert point.kwargs() == {"a": expected, "c": 7}

    def test_zip_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            SweepSpec(name="s", task="workload", mode="zip",
                      axes={"a": [1, 2], "b": [1]})

    def test_base_axis_overlap_rejected(self):
        with pytest.raises(ConfigError):
            SweepSpec(name="s", task="workload", base={"a": 1}, axes={"a": [2]})

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            SweepSpec(name="s", task="workload", mode="diagonal")


class TestSeedsAndKeys:
    def test_point_seed_follows_params_not_position(self):
        forward = SweepSpec(name="s", task="workload", axes={"a": [1, 2, 3]})
        backward = SweepSpec(name="s", task="workload", axes={"a": [3, 2, 1]})
        by_params_fwd = {p.kwargs()["a"]: p for p in forward.points()}
        by_params_bwd = {p.kwargs()["a"]: p for p in backward.points()}
        for a in (1, 2, 3):
            assert by_params_fwd[a].seed == by_params_bwd[a].seed
            assert by_params_fwd[a].cache_key() == by_params_bwd[a].cache_key()

    def test_cache_key_ignores_spec_name(self):
        one = SweepSpec(name="one", task="workload", axes={"a": [1]}).points()[0]
        two = SweepSpec(name="two", task="workload", axes={"a": [1]}).points()[0]
        assert one.cache_key() == two.cache_key()

    def test_cache_key_changes_with_params_seed_and_task(self, seeded_task):
        base = SweepSpec(name="s", task=seeded_task, axes={"a": [1]}).points()[0]
        other_param = SweepSpec(name="s", task=seeded_task, axes={"a": [2]}).points()[0]
        other_seed = SweepSpec(name="s", task=seeded_task, axes={"a": [1]},
                               seed=1).points()[0]
        other_task = SweepSpec(name="s", task="workload",
                               axes={"a": [1]}).points()[0]
        keys = {base.cache_key(), other_param.cache_key(), other_seed.cache_key(),
                other_task.cache_key()}
        assert len(keys) == 4

    def test_spec_seed_distinguishes_points(self):
        seeded = {spec_seed: SweepSpec(name="s", task="workload",
                                       axes={"a": [1]}, seed=spec_seed).points()[0].seed
                  for spec_seed in (0, 1)}
        assert seeded[0] != seeded[1]

    def test_seedless_task_key_ignores_spec_seed(self):
        # the shipped generic task takes no seed (the workload's data fully
        # determines the result), so identical simulations share one cache
        # entry across seeds
        one = SweepSpec(name="s", task="workload", axes={"a": [1]}, seed=0).points()[0]
        two = SweepSpec(name="s", task="workload", axes={"a": [1]}, seed=9).points()[0]
        assert one.cache_key() == two.cache_key()

    def test_late_registration_clears_seedless_cache(self):
        # querying an unknown task caches "seedless"; registering it must
        # invalidate that verdict
        from repro.sweep import register_task
        name = "_late_registered_probe_task"
        spec = SweepSpec(name="s", task=name, axes={"a": [1]}, seed=0)
        key_before = spec.points()[0].cache_key()
        assert not task_accepts_seed(name)
        try:
            register_task(name)(lambda seed=0: {"seed": float(seed)})
            assert task_accepts_seed(name)
            assert spec.points()[0].cache_key() != key_before
        finally:
            del TASKS[name]
            task_accepts_seed.cache_clear()

    def test_label_mentions_spec_and_small_params(self):
        point = SweepSpec(name="tiles", task="workload",
                          base={"huge": list(range(100))},
                          axes={"tile_rows": [16]}).points()[0]
        label = point.label()
        assert "tiles[0]" in label
        assert "tile_rows=16" in label
        assert "huge" not in label
