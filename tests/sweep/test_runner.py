"""SweepRunner execution: determinism, pooling and cache correctness."""

from dataclasses import replace

import pytest

from repro.api import AttentionWorkload, MoEWorkload, Schedule
from repro.core.errors import ConfigError
from repro.data.expert_routing import generate_routing_trace, representative_iteration
from repro.sweep import ResultCache, SweepRunner, SweepSpec, execute_point, resolve_runner
from repro.sweep.runner import DEFAULT_RUNNER
from repro.workloads.configs import QWEN3_30B_A3B, scaled_config, sda_hardware


def tile_schedule(tile) -> Schedule:
    return Schedule.dynamic() if tile is None else Schedule.static(f"tile={tile}", tile)


def tiny_moe_spec(seed: int = 0, tiles=(4, 8, None)) -> SweepSpec:
    """A tiny MoE grid over the generic ``workload`` task (the shipped task)."""
    model = replace(scaled_config(QWEN3_30B_A3B, scale=32), name="tiny-4e",
                    num_experts=4, experts_per_token=2)
    trace = generate_routing_trace(model, batch_size=8, num_iterations=2, seed=seed)
    assignments = [list(a) for a in representative_iteration(trace)]
    return SweepSpec(
        name="tiny-moe",
        task="workload",
        base={"workload": MoEWorkload(model=model, batch=8, assignments=assignments),
              "hardware": sda_hardware()},
        axes={"schedule": [tile_schedule(t) for t in tiles]},
        seed=seed,
    )


class TestDeterminism:
    def test_same_spec_twice_is_identical(self):
        runner = SweepRunner(jobs=1)
        first = [r.metrics for r in runner.run(tiny_moe_spec())]
        second = [r.metrics for r in runner.run(tiny_moe_spec())]
        assert first == second
        assert all(m["cycles"] > 0 for m in first)

    def test_pooled_workers_match_serial(self):
        spec = tiny_moe_spec()
        serial = [r.metrics for r in SweepRunner(jobs=1).run(spec)]
        pooled = [r.metrics for r in SweepRunner(jobs=2).run(spec)]
        assert serial == pooled  # bit-identical cycles, traffic, memory, flops

    def test_different_seed_changes_routing_hence_results(self):
        base = [r.metrics for r in DEFAULT_RUNNER.run(tiny_moe_spec(seed=0))]
        other = [r.metrics for r in DEFAULT_RUNNER.run(tiny_moe_spec(seed=3))]
        assert base != other


class TestCaching:
    def test_cached_rerun_is_correct_and_skips_simulation(self, tmp_path):
        runner = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        fresh = runner.run(tiny_moe_spec())
        assert runner.last_stats.simulated == len(fresh) > 0
        assert not any(r.cached for r in fresh)

        rerun = runner.run(tiny_moe_spec())
        assert runner.last_stats.simulated == 0
        assert runner.last_stats.cache_hits == len(rerun)
        assert all(r.cached for r in rerun)
        # the headline satellite: cached result == fresh result
        assert [r.metrics for r in rerun] == [r.metrics for r in fresh]

    def test_cache_shared_across_runner_instances(self, tmp_path):
        SweepRunner(jobs=1, cache=ResultCache(tmp_path)).run(tiny_moe_spec())
        other = SweepRunner(jobs=2, cache=ResultCache(tmp_path))
        results = other.run(tiny_moe_spec())
        assert other.last_stats.simulated == 0
        assert all(r.cached for r in results)

    def test_growing_a_grid_only_simulates_new_points(self, tmp_path):
        runner = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        runner.run(tiny_moe_spec(tiles=(4, 8)))
        runner.run(tiny_moe_spec(tiles=(4, 8, None)))
        assert runner.last_stats.simulated == 1
        assert runner.last_stats.cache_hits == 2

    def test_runner_accepts_path_as_cache(self, tmp_path):
        runner = SweepRunner(jobs=1, cache=tmp_path / "c")
        assert isinstance(runner.cache, ResultCache)

    def test_duplicate_points_simulated_once(self):
        # zip grids may legitimately repeat a point (Figure 21's overlapping
        # batch classes); identical cache keys must collapse to one simulation
        spec = tiny_moe_spec(tiles=(4, 4, 8))
        runner = SweepRunner(jobs=1)
        results = runner.run(spec)
        assert runner.last_stats.points == 3
        assert runner.last_stats.simulated == 2
        assert results[0].metrics == results[1].metrics
        assert results[0].metrics != results[2].metrics


class TestExecution:
    def test_results_come_back_in_grid_order(self):
        spec = tiny_moe_spec()
        results = DEFAULT_RUNNER.run(spec)
        assert [r.point.index for r in results] == list(range(len(spec)))
        schedules = [r.point.kwargs()["schedule"] for r in results]
        assert schedules == list(spec.axes["schedule"])

    def test_unknown_task_rejected(self):
        spec = SweepSpec(name="bad", task="nonexistent", axes={"a": [1]})
        with pytest.raises(ConfigError):
            DEFAULT_RUNNER.run(spec)

    def test_execute_point_injects_point_seed(self):
        from repro.sweep.tasks import TASKS
        name = "_seed_probe_test_task"
        TASKS[name] = lambda seed=0: {"seed": float(seed)}
        try:
            point = SweepSpec(name="s", task=name, seed=5).points()[0]
            assert execute_point(point)["seed"] == float(point.seed)
        finally:
            del TASKS[name]

    def test_seedless_task_runs_without_injection(self):
        from repro.sweep.tasks import TASKS
        name = "_seedless_probe_test_task"
        TASKS[name] = lambda value: {"value": float(value)}
        try:
            point = SweepSpec(name="s", task=name, axes={"value": [2]}).points()[0]
            assert execute_point(point) == {"value": 2.0}
        finally:
            del TASKS[name]

    def test_attention_workload_rejects_short_traces(self):
        from repro.sweep.tasks import get_task
        model = scaled_config(QWEN3_30B_A3B, scale=32)
        workload = AttentionWorkload(model=model, batch=8, lengths=[64, 64])
        with pytest.raises(ConfigError):
            get_task("workload")(workload=workload, schedule=Schedule.dynamic(),
                                 hardware=sda_hardware())

    def test_resolve_runner_defaults_to_serial_uncached(self):
        assert resolve_runner(None) is DEFAULT_RUNNER
        assert DEFAULT_RUNNER.jobs == 1 and DEFAULT_RUNNER.cache is None
        custom = SweepRunner(jobs=2)
        assert resolve_runner(custom) is custom
