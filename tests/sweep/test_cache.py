"""Canonicalization, stable hashing and the on-disk result cache."""

import json
from dataclasses import dataclass

import numpy as np
import pytest

from repro.sweep import ResultCache, canonicalize, code_fingerprint, \
    default_cache_root, stable_hash
from repro.sweep.cache import CACHE_ENV_VAR
from repro.workloads.configs import QWEN3_30B_A3B, sda_hardware


@dataclass(frozen=True)
class PointA:
    x: int = 1


@dataclass(frozen=True)
class PointB:
    x: int = 1


class TestStableHash:
    def test_dict_key_order_irrelevant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_tuple_and_list_equivalent(self):
        assert stable_hash((1, 2, 3)) == stable_hash([1, 2, 3])

    def test_distinct_dataclass_types_do_not_collide(self):
        assert stable_hash(PointA()) != stable_hash(PointB())

    def test_dataclass_field_change_changes_hash(self):
        assert stable_hash(PointA(x=1)) != stable_hash(PointA(x=2))

    def test_numpy_scalars_and_arrays(self):
        assert stable_hash(np.int64(7)) == stable_hash(7)
        assert stable_hash(np.array([1, 2])) == stable_hash([1, 2])

    def test_config_dataclasses_hash_deterministically(self):
        assert stable_hash(QWEN3_30B_A3B) == stable_hash(QWEN3_30B_A3B)
        assert stable_hash(sda_hardware()) == \
            stable_hash(sda_hardware(onchip_bandwidth=64.0))
        assert stable_hash(sda_hardware()) != \
            stable_hash(sda_hardware(onchip_bandwidth=32.0))

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            stable_hash(object())

    def test_canonical_enum_tagging(self):
        from repro.data.kv_traces import VarianceClass
        payload = canonicalize(VarianceClass.HIGH)
        assert payload["__enum__"] == "VarianceClass"


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_hash({"point": 1})
        assert cache.get(key) is None
        cache.put(key, {"cycles": 12.5})
        assert cache.get(key) == {"cycles": 12.5}
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1
        assert len(cache) == 1

    def test_corrupt_entry_treated_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_hash("x")
        cache.put(key, {"cycles": 1.0})
        cache.path_for(key).write_text("{not json")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(stable_hash(i), {"cycles": float(i)})
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_entries_are_plain_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_hash("y")
        cache.put(key, {"cycles": 3.0})
        assert json.loads(cache.path_for(key).read_text()) == {"cycles": 3.0}

    def test_code_fingerprint_is_stable_and_hexadecimal(self):
        first = code_fingerprint()
        assert first == code_fingerprint()
        int(first, 16)
        assert len(first) == 64

    def test_default_root_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "env-cache"))
        assert default_cache_root() == tmp_path / "env-cache"
        assert ResultCache().root == tmp_path / "env-cache"
