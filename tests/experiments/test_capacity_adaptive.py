"""Adaptive capacity search: bisection finds the grid's knee in fewer probes.

The contract under test (:mod:`repro.experiments.capacity`):

* :func:`bisect_knee` finds the last sustainable rung of a monotone ladder
  in ``O(log n)`` evaluations — for all-sustainable, none-sustainable and
  mid-ladder knees,
* :func:`run_adaptive` reports the **same** per-platform knee and summary
  values as the exhaustive grid of :func:`run`, while evaluating fewer (or
  at worst as many) points, and shares cache entries with the grid.
"""

import math

import pytest

from repro.experiments import capacity
from repro.experiments.common import SMOKE_SCALE


class TestBisectKnee:
    def _ladder(self, flags):
        calls = []

        def sustainable(j):
            calls.append(j)
            return flags[j]

        return sustainable, calls

    @pytest.mark.parametrize("num_rates", [1, 2, 5, 8, 13])
    @pytest.mark.parametrize("knee", ["all", "none", "middle"])
    def test_matches_linear_scan_on_monotone_ladders(self, num_rates, knee):
        cut = {"all": num_rates, "none": 0, "middle": (num_rates + 1) // 2}[knee]
        flags = [j < cut for j in range(num_rates)]
        sustainable, calls = self._ladder(flags)
        index, evaluations = capacity.bisect_knee(sustainable, num_rates)
        expected = cut - 1 if cut else None
        assert index == expected
        assert evaluations == len(calls)
        assert evaluations <= int(math.log2(num_rates)) + 1

    def test_every_middle_knee_position(self):
        num_rates = 9
        for cut in range(num_rates + 1):
            flags = [j < cut for j in range(num_rates)]
            sustainable, _ = self._ladder(flags)
            index, _ = capacity.bisect_knee(sustainable, num_rates)
            assert index == (cut - 1 if cut else None)


@pytest.fixture(scope="module")
def grid_result():
    return capacity.run(SMOKE_SCALE)


@pytest.fixture(scope="module")
def adaptive_result():
    return capacity.run_adaptive(SMOKE_SCALE)


class TestRunAdaptive:
    def test_same_knee_and_summary_as_grid(self, grid_result, adaptive_result):
        """The acceptance pin: bisection lands on the grid's exact knee."""
        for label in grid_result["summary"]:
            grid = grid_result["summary"][label]
            adaptive = adaptive_result["summary"][label]
            for key in ("max_sustainable_rate", "attainment_at_knee",
                        "attainment_at_peak_load", "slo_goodput_at_knee"):
                assert adaptive[key] == grid[key], (label, key)

    def test_evaluates_no_more_than_the_grid(self, adaptive_result):
        assert adaptive_result["total_evaluations"] <= \
            adaptive_result["grid_points"]
        ladder = len(adaptive_result["rates"])
        for label, row in adaptive_result["summary"].items():
            # log2 bisection probes + at most one extra for the peak rung
            assert row["evaluations"] <= int(math.log2(ladder)) + 2, label

    def test_probes_share_cache_entries_with_the_grid(self, tmp_path):
        """After the grid ran, the adaptive pass is pure cache hits — the
        one-point probe specs hash identically to the grid's points."""
        from repro.sweep import SweepRunner

        class RecordingRunner(SweepRunner):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.results = []

            def run_points(self, points):
                results = super().run_points(points)
                self.results.extend(results)
                return results

        runner = RecordingRunner(cache=tmp_path / "cache")
        capacity.run(SMOKE_SCALE, runner=runner)
        runner.results.clear()
        adaptive = capacity.run_adaptive(SMOKE_SCALE, runner=runner)
        assert len(runner.results) == adaptive["total_evaluations"]
        assert all(result.cached for result in runner.results)
