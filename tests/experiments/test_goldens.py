"""Golden-value smoke regressions for the figure experiments.

``goldens_smoke.json`` pins the headline metrics of a fixed figure subset at
``SMOKE_SCALE``.  The simulator is deterministic (see
``tests/sim/test_determinism.py``), so drift here means the timing model, a
workload builder or a schedule changed behaviour — if the change is
intentional, regenerate the file::

    PYTHONPATH=src python tests/experiments/test_goldens.py --regenerate

Tolerances are relative and deliberately loose (2%) so benign refactors
(operator naming, float summation order) do not trip them.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import figure9_10, figure12_13, figure15
from repro.experiments.common import SMOKE_SCALE

GOLDENS_PATH = Path(__file__).parent / "goldens_smoke.json"
REL_TOL = 0.02


def compute_goldens() -> dict:
    """The golden payload: every value here is asserted against the file."""
    goldens = {"scale": "smoke", "figures": {}}

    fig9 = figure9_10.run(SMOKE_SCALE)
    goldens["figures"]["figure9"] = {
        model: {
            "pid": payload["summary"]["pid"],
            "speedup_at_matched_memory": payload["summary"]["speedup_at_matched_memory"],
            "dynamic_cycles": _dynamic_row(payload)["cycles"],
            "dynamic_offchip_traffic_bytes":
                _dynamic_row(payload)["offchip_traffic_bytes"],
            "dynamic_onchip_memory_bytes":
                _dynamic_row(payload)["onchip_memory_bytes"],
        }
        for model, payload in fig9["per_model"].items()
    }

    fig12 = figure12_13.run(SMOKE_SCALE)
    goldens["figures"]["figure12_13"] = {
        tiling: {
            "utilization_gain": fig12[tiling]["summary"]["utilization_gain"],
            "compute_saving_fraction":
                fig12[tiling]["summary"]["compute_saving_fraction"],
            "memory_saving_fraction":
                fig12[tiling]["summary"]["memory_saving_fraction"],
        }
        for tiling in ("static", "dynamic")
    }

    fig15 = figure15.run(SMOKE_SCALE)
    goldens["figures"]["figure15"] = {
        "smallest_batch_speedup": fig15["smallest_batch_speedup"],
        "largest_batch_speedup": fig15["largest_batch_speedup"],
        "max_speedup": fig15["max_speedup"],
        "dynamic_cycles_by_batch": {str(row["batch"]): row["dynamic_cycles"]
                                    for row in fig15["rows"]},
    }
    return goldens


def _dynamic_row(payload: dict) -> dict:
    return [row for row in payload["rows"] if row["tile_rows"] is None][0]


def _flatten(prefix: str, value):
    if isinstance(value, dict):
        for key, sub in value.items():
            yield from _flatten(f"{prefix}.{key}" if prefix else str(key), sub)
    else:
        yield prefix, value


@pytest.fixture(scope="module")
def recorded():
    assert GOLDENS_PATH.exists(), \
        f"{GOLDENS_PATH} missing; run this module with --regenerate"
    return dict(_flatten("", json.loads(GOLDENS_PATH.read_text())))


@pytest.fixture(scope="module")
def current():
    return dict(_flatten("", compute_goldens()))


def test_no_metrics_added_or_removed(recorded, current):
    assert set(recorded) == set(current)


def test_headline_metrics_match_goldens(recorded, current):
    mismatches = []
    for key, expected in recorded.items():
        actual = current[key]
        if isinstance(expected, float):
            if actual != pytest.approx(expected, rel=REL_TOL):
                mismatches.append(f"{key}: recorded {expected!r}, got {actual!r}")
        elif actual != expected:
            mismatches.append(f"{key}: recorded {expected!r}, got {actual!r}")
    assert not mismatches, "golden drift:\n  " + "\n  ".join(mismatches)


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        GOLDENS_PATH.write_text(json.dumps(compute_goldens(), indent=2, sort_keys=True)
                                + "\n")
        print(f"wrote {GOLDENS_PATH}")
    else:
        print(__doc__)
