"""The memory-pressure experiment: the goodput cliff, pinned at smoke scale."""

import pytest

from repro.api import get_scenario, run
from repro.experiments import memory_pressure
from repro.experiments.common import SMOKE_SCALE


@pytest.fixture(scope="module")
def result():
    return memory_pressure.run(SMOKE_SCALE)


class TestGrid:
    def test_capacity_family_shares_the_sda_timing(self):
        platforms = memory_pressure.capacity_platforms(SMOKE_SCALE)
        assert list(platforms)[0] == "sda"
        base = platforms["sda"]
        assert base.hbm_capacity_bytes is None
        bounded = [p for p in platforms.values()
                   if p.hbm_capacity_bytes is not None]
        assert len(bounded) == len(platforms) - 1 >= 1
        # only the capacity differs — bandwidths/timing are the sda's, so any
        # metric gap between the curves is purely the finite KV pool
        assert all(p.hardware == base.hardware for p in bounded)

    def test_rows_cover_every_capacity_and_rate(self, result):
        rates = [row["rate"] for row in result["rows"]]
        assert rates == sorted(rates) and len(rates) == \
            len(SMOKE_SCALE.serve_rates)
        for row in result["rows"]:
            for label in result["capacities"]:
                assert f"{label}_slo_goodput_rpmc" in row
                assert f"{label}_ttft_p99" in row


class TestGoodputCliff:
    def tightest(self, result):
        return result["capacities"][-1]

    def test_bounded_peak_below_unbounded_peak(self, result):
        summary = result["summary"]
        assert summary[self.tightest(result)]["peak_slo_goodput_rpmc"] < \
            summary["sda"]["peak_slo_goodput_rpmc"]

    def test_slo_goodput_strictly_declines_past_the_peak(self, result):
        """The acceptance criterion: past saturation, every extra unit of
        offered load *costs* SLO goodput on the tightest capacity."""
        label = self.tightest(result)
        series = [row[f"{label}_slo_goodput_rpmc"] for row in result["rows"]]
        peak = series.index(max(series))
        assert peak < len(series) - 1  # the ladder actually crosses saturation
        for before, after in zip(series[peak:], series[peak + 1:]):
            assert after < before
        assert result["summary"][label]["cliff_ratio"] < 1.0

    def test_pressure_counters_light_up_only_when_bounded(self, result):
        summary = result["summary"]
        assert summary["sda"]["preemptions"] == 0.0
        assert summary["sda"]["admission_stalls"] == 0.0
        label = self.tightest(result)
        assert summary[label]["preemptions"] > 0
        assert summary[label]["admission_stalls"] > 0

    def test_bounded_tail_latency_inflates_faster(self, result):
        label = self.tightest(result)
        top = result["rows"][-1]
        assert top[f"{label}_ttft_p99"] > top["sda_ttft_p99"]


class TestScenarios:
    def test_serve_overload_isolates_the_capacity_cost(self):
        result = run(get_scenario("serve-overload", rates=(640.0,),
                                  num_requests=12))
        by_platform = {row.platform: row.metrics for row in result.rows}
        assert by_platform["sda"]["preemptions"] == 0.0
        assert by_platform["sda-hbm-small"]["preemptions"] > 0
        assert by_platform["sda-hbm-small"]["cycles"] > \
            by_platform["sda"]["cycles"]

    def test_paged_vs_contiguous_trade(self):
        result = run(get_scenario("serve-paged-vs-contiguous",
                                  num_requests=12))
        by_mode = {row.workload: row.metrics for row in result.rows}
        # paged pays in preemptions/recompute, contiguous in reservation
        # waste — it never preempts but fragments more
        assert by_mode["contiguous"]["preemptions"] == 0.0
        assert by_mode["contiguous"]["kv_fragmentation_mean"] > \
            by_mode["paged"]["kv_fragmentation_mean"]
        assert by_mode["paged"]["admission_stalls"] < \
            by_mode["contiguous"]["admission_stalls"]

    def test_platform_capacity_survives_the_sweep_path(self):
        """Regression: the sweep task must hand the workload the *Platform*,
        not just its HardwareConfig — otherwise hbm_capacity_bytes silently
        vanishes and bounded scenario cells report an unbounded run."""
        result = run(get_scenario("serve-overload", rates=(640.0,),
                                  num_requests=12))
        bounded = [row.metrics for row in result.rows
                   if row.platform == "sda-hbm-small"]
        assert bounded and all(m["kv_capacity_pages"] > 0 for m in bounded)
