"""Smoke tests for the per-figure experiment harness (at the tiny smoke scale).

Each test asserts the *direction* of the paper's claim: dynamic tiling reaches
or beats the static Pareto frontier, time-multiplexing trades a small slowdown
for large resource savings, dynamic parallelization wins when load is
imbalanced, and the two simulators agree on traffic.
"""

import pytest

from repro.experiments import figure1, figure8, figure9_10, figure12_13, figure14, \
    figure15, figure17, figure19_20, figure21
from repro.experiments.common import SMOKE_SCALE
from repro.experiments.report import format_summary, format_table
from repro.experiments.runner import FIGURES, main


@pytest.fixture(scope="module")
def fig9():
    return figure9_10.run(SMOKE_SCALE, large_batch=False)


@pytest.fixture(scope="module")
def fig12():
    return figure12_13.run(SMOKE_SCALE)


class TestFigure1:
    def test_gpu_below_half_sda_above(self):
        result = figure1.run(SMOKE_SCALE)
        assert result["gpu_max_fraction"] < 0.5
        assert result["sda_min_fraction"] > 0.5
        assert len(result["rows"]) == 12


class TestFigure8:
    def test_models_agree(self):
        result = figure8.run(SMOKE_SCALE)
        assert result["traffic_identical"]
        assert result["pearson_correlation"] > 0.7
        assert len(result["rows"]) >= 6


class TestFigure9And19:
    def test_dynamic_tiling_reaches_frontier(self, fig9):
        for model, payload in fig9["per_model"].items():
            summary = payload["summary"]
            assert summary["pid"] >= 0.95, f"{model}: dynamic tiling dominated by static"
            assert summary["speedup_at_matched_memory"] >= 0.95

    def test_traffic_view_consistent(self, fig9):
        fig19 = figure19_20.run(SMOKE_SCALE, large_batch=False)
        for model, payload in fig19["per_model"].items():
            base_rows = fig9["per_model"][model]["rows"]
            assert len(payload["rows"]) == len(base_rows)
            dynamic = [r for r in payload["rows"] if r["tile_rows"] is None][0]
            static_traffic = [r["offchip_traffic_bytes"] for r in payload["rows"]
                              if r["tile_rows"] is not None]
            assert dynamic["offchip_traffic_bytes"] <= max(static_traffic)


class TestFigure12And13:
    def test_time_multiplexing_saves_resources(self, fig12):
        for tiling in ("static", "dynamic"):
            summary = fig12[tiling]["summary"]
            assert summary["utilization_gain"] > 1.5
            assert summary["compute_saving_fraction"] > 0.3

    def test_allocated_compute_scales_with_regions(self, fig12):
        rows = fig12["static"]["rows"]
        by_regions = {r["parallel_regions"]: r for r in rows}
        regions = sorted(by_regions)
        assert by_regions[regions[0]]["allocated_compute_flops_per_cycle"] < \
            by_regions[regions[-1]]["allocated_compute_flops_per_cycle"]


class TestFigure14And15:
    def test_dynamic_parallelization_speedups_sane(self):
        """At the tiny smoke scale (batch 16) the variance trend is noisy, so
        this test only checks that the experiment produces sane speedups for
        every class; the paper-trend assertion (speedup grows with variance)
        lives in the benchmark harness, which runs the batch-64 default scale.
        """
        result = figure14.run(SMOKE_SCALE)
        speedups = result["speedup_by_variance"]
        assert set(speedups) == {"low", "medium", "high"}
        assert all(0.7 < value < 3.0 for value in speedups.values())

    def test_coarse_grained_penalty_at_small_batch(self):
        result = figure15.run(SMOKE_SCALE)
        assert result["smallest_batch_speedup"] > 1.3
        assert result["smallest_batch_speedup"] >= result["largest_batch_speedup"] - 0.05


class TestFigure17:
    def test_dynamic_schedule_wins(self):
        result = figure17.run(SMOKE_SCALE)
        for model, payload in result["per_model"].items():
            summary = payload["summary"]
            assert summary["speedup_vs_static_mem"] > 0.9
            assert summary["compute_saving_vs_static"] >= 0.0 or \
                "Mixtral" in model  # Mixtral keeps spatial experts (no time-mux)


class TestFigure21:
    def test_dynamic_is_best_on_geomean(self):
        result = figure21.run(SMOKE_SCALE)
        norm = result["geomean_normalized"]
        assert norm["dynamic"] == pytest.approx(1.0)
        assert norm["interleave"] >= 0.95
        assert norm["coarse"] > 1.0


class TestRunnerAndReport:
    def test_format_table_and_summary(self):
        table = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}])
        assert "a" in table and "10" in table
        assert "(no rows)" in format_table([])
        assert "x: 1.500" in format_summary({"x": 1.5})

    def test_registry_covers_all_figures(self):
        assert set(FIGURES) == {"1", "8", "9", "10", "12", "13", "14", "15", "17",
                                "19", "20", "21"}

    def test_cli_single_figure(self, capsys):
        assert main(["--figure", "1", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out

    def test_cli_rejects_unknown_figure(self):
        assert main(["--figure", "99", "--smoke"]) == 2
