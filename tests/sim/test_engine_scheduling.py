"""Scheduling edge cases for the optimized engine.

The PR-3 optimization pass (batched effects, channel-attached waiter lists,
fused tick/hbm pushes) must preserve the scalar engine's semantics exactly.
These tests pin the behaviours that are easiest to break:

* backpressure wake-up ordering and producer clock bumps,
* ``pop_any`` tie-breaking,
* ``time_slack`` horizon rescheduling,
* batched-effect equivalence with scalar effect sequences, and
* a determinism anchor: a mixed pipeline (bounded channels, HBM contention,
  ``pop_any`` merging) whose metrics were recorded on the *pre-optimization*
  engine — the optimized engine must reproduce them bit-for-bit.
"""

import pytest

from repro.core.stream import DONE, Data, Done
from repro.sim.engine import Engine, ProcessState
from repro.sim.hbm import HBMModel


class TestBackpressureWakeup:
    def test_blocked_producers_wake_in_fifo_order(self):
        engine = Engine(timed=True)
        ch = engine.add_channel("ch", capacity=1, latency=0.0)
        order = []

        def producer(name):
            yield ("push", ch, Data(name))
            order.append(name)

        def consumer():
            for _ in range(2):
                token = yield ("pop", ch)
                order.append(("pop", token.value))
                yield ("tick", 10)

        engine.add_process("p1", producer("p1"))
        engine.add_process("p2", producer("p2"))
        engine.add_process("c", consumer(), is_sink=True)
        engine.run()
        # p1 fills the slot; p2 blocks; after the first pop p2's retry lands
        # before any later producer could jump the queue
        assert order[0] == "p1"
        assert ("pop", "p1") in order and ("pop", "p2") in order
        assert order.index(("pop", "p1")) < order.index(("pop", "p2"))

    def test_backpressured_producer_clock_bumped_to_pop_time(self):
        engine = Engine(timed=True)
        ch = engine.add_channel("ch", capacity=1, latency=0.0)

        def producer():
            yield ("push", ch, Data(0))
            yield ("push", ch, Data(1))  # blocks until the consumer pops

        producer_proc = engine.add_process("producer", producer())

        def consumer():
            yield ("tick", 50)
            yield ("pop", ch)
            yield ("pop", ch)

        engine.add_process("consumer", consumer(), is_sink=True)
        engine.run()
        # the second push happens at the consumer's pop time (>= 50)
        assert producer_proc.local_time >= 50

    def test_batched_push_run_blocks_and_resumes_mid_run(self):
        engine = Engine(timed=True)
        ch = engine.add_channel("ch", capacity=2, latency=0.0)
        tokens = [Data(i) for i in range(5)]

        def producer():
            yield ("push_many", [ch], tokens)

        seen = []

        def consumer():
            while len(seen) < 5:
                token = yield ("pop", ch)
                seen.append(token.value)
                yield ("tick", 7)

        engine.add_process("p", producer())
        engine.add_process("c", consumer(), is_sink=True)
        engine.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_space_waiters_live_on_the_channel(self):
        engine = Engine(timed=True)
        ch = engine.add_channel("ch", capacity=1, latency=0.0)

        def producer():
            yield ("push", ch, Data(0))
            yield ("push", ch, Data(1))

        proc = engine.add_process("p", producer())
        # run only the producer: it should block with itself registered
        engine._advance(proc, float("inf"))
        assert proc.state is ProcessState.BLOCKED
        assert proc in ch.space_waiters
        assert proc.blocked_on == [ch]


class TestPopAnyTieBreaking:
    def test_equal_ready_times_pick_lowest_index(self):
        engine = Engine(timed=True)
        a = engine.add_channel("a", latency=0.0)
        b = engine.add_channel("b", latency=0.0)
        a.push(Data("a"), 5.0)
        b.push(Data("b"), 5.0)
        picks = []

        def merger():
            for _ in range(2):
                index, token = yield ("pop_any", [a, b])
                picks.append((index, token.value))

        engine.add_process("m", merger(), is_sink=True)
        engine.run()
        assert picks == [(0, "a"), (1, "b")]

    def test_earlier_head_wins_regardless_of_index(self):
        engine = Engine(timed=True)
        a = engine.add_channel("a", latency=0.0)
        b = engine.add_channel("b", latency=0.0)
        a.push(Data("late"), 50.0)
        b.push(Data("early"), 1.0)
        picks = []

        def merger():
            for _ in range(2):
                index, token = yield ("pop_any", [a, b])
                picks.append(token.value)

        engine.add_process("m", merger(), is_sink=True)
        engine.run()
        assert picks == ["early", "late"]


class TestTimeSlackRescheduling:
    @staticmethod
    def _race(time_slack):
        """Two tickers racing to record; who records first depends on slack."""
        engine = Engine(timed=True, time_slack=time_slack)
        order = []

        def slow():
            yield ("tick", 1000)
            order.append("slow")

        def fast():
            yield ("tick", 10)
            order.append("fast")

        # the slow process is enqueued first, so it runs first; with a tight
        # slack its post-tick horizon check yields to the fast process
        engine.add_process("slow", slow())
        engine.add_process("fast", fast())
        engine.run()
        return order

    def test_tight_slack_reschedules_overrunning_process(self):
        assert self._race(time_slack=5.0) == ["fast", "slow"]

    def test_loose_slack_lets_the_first_process_finish(self):
        assert self._race(time_slack=10_000.0) == ["slow", "fast"]

    def test_pop_run_returns_partial_batch_at_horizon(self):
        engine = Engine(timed=True, time_slack=5.0)
        ch = engine.add_channel("ch", latency=0.0)
        for i in range(6):
            ch.push(Data(i), float(10 * i))  # ready times 0, 10, 20, ...
        runs = []

        def other():
            yield ("tick", 1)

        def drainer():
            got = 0
            while got < 6:
                run = yield ("pop_run", ch, 64)
                runs.append([t.value for t in run])
                got += len(run)

        engine.add_process("drainer", drainer(), is_sink=True)
        engine.add_process("other", other())
        engine.run()
        assert [v for run in runs for v in run] == [0, 1, 2, 3, 4, 5]
        # the horizon (other's clock + 5) interrupts the first run: the
        # time-ordered scheduler must not let the drainer race ahead
        assert len(runs) > 1


class TestBatchedEffectEquivalence:
    """Batched effects must be observationally identical to scalar loops."""

    @staticmethod
    def _pipeline(push_style):
        engine = Engine(timed=True)
        ch = engine.add_channel("ch", capacity=3, latency=1.0)
        tokens = [Data(i) for i in range(8)] + [DONE]

        def producer_scalar():
            for token in tokens:
                yield ("push", ch, token)

        def producer_batched():
            yield ("push_many", [ch], tokens)

        seen = []

        def consumer():
            while True:
                token = yield ("pop", ch)
                if isinstance(token, Done):
                    return
                seen.append(token.value)
                yield ("tick", 3)

        producer = producer_scalar if push_style == "scalar" else producer_batched
        engine.add_process("p", producer())
        engine.add_process("c", consumer(), is_sink=True)
        metrics = engine.run()
        return metrics.cycles, seen

    def test_push_many_matches_scalar_pushes(self):
        assert self._pipeline("batched") == self._pipeline("scalar")

    def test_pop_each_matches_sequential_pops(self):
        def build(style):
            engine = Engine(timed=True)
            a = engine.add_channel("a", latency=1.0)
            b = engine.add_channel("b", latency=2.0)
            for i in range(3):
                a.push(Data(("a", i)), float(i))
                b.push(Data(("b", i)), float(5 * i))
            got = []

            def scalar():
                for _ in range(3):
                    x = yield ("pop", a)
                    y = yield ("pop", b)
                    got.append((x.value, y.value))

            def batched():
                for _ in range(3):
                    x, y = yield ("pop_each", (a, b))
                    got.append((x.value, y.value))

            gen = scalar if style == "scalar" else batched
            proc = engine.add_process("z", gen(), is_sink=True)
            engine.run()
            return got, proc.local_time

        assert build("batched") == build("scalar")

    def test_tick_push_matches_tick_then_push(self):
        def build(style):
            engine = Engine(timed=True)
            ch = engine.add_channel("ch", latency=1.0)

            def scalar():
                for i in range(4):
                    yield ("tick", 2.5)
                    yield ("push", ch, Data(i))
                yield ("push", ch, DONE)

            def fused():
                for i in range(4):
                    yield ("tick_push_all", 2.5, [ch], Data(i))
                yield ("push_all", [ch], DONE)

            seen = []

            def consumer():
                while True:
                    token = yield ("pop", ch)
                    if isinstance(token, Done):
                        return
                    seen.append(token.value)

            engine.add_process("p", scalar() if style == "scalar" else fused())
            engine.add_process("c", consumer(), is_sink=True)
            metrics = engine.run()
            return metrics.cycles, seen

        assert build("fused") == build("scalar")


class TestPreOptimizationGoldens:
    """The optimized engine reproduces metrics recorded on the scalar engine.

    The pinned numbers below were produced by the pre-PR-3 engine (commit
    d4f26ca) running this exact program: two HBM-contending producers feeding
    bounded channels into a pop_any merger and a ticking sink.  Any drift
    means the optimization changed simulated timing, not just wall-clock.
    """

    @staticmethod
    def _build_and_run(time_slack):
        engine = Engine(timed=True, hbm=HBMModel(bandwidth=32.0, latency=25.0),
                        time_slack=time_slack)
        a = engine.add_channel("a", capacity=2, latency=1.0)
        b = engine.add_channel("b", capacity=3, latency=2.0)
        merged = engine.add_channel("m", capacity=4, latency=1.0)

        def producer(ch, n, tick, name):
            def gen():
                for i in range(n):
                    yield ("hbm", 64, False, i * 64)
                    yield ("tick", tick)
                    yield ("push", ch, Data((name, i)))
                yield ("push", ch, DONE)
            return gen()

        def merger():
            live = [a, b]
            done = 0
            while done < 2:
                _, token = yield ("pop_any", live)
                if isinstance(token, Done):
                    done += 1
                    continue
                yield ("tick", 3)
                yield ("push", merged, token)
            yield ("push", merged, DONE)

        seen = []

        def sink():
            while True:
                token = yield ("pop", merged)
                if isinstance(token, Done):
                    return
                seen.append(token.value)
                yield ("tick", 5)

        engine.add_process("pa", producer(a, 6, 4, "a"))
        engine.add_process("pb", producer(b, 5, 9, "b"))
        engine.add_process("merge", merger())
        engine.add_process("sink", sink(), is_sink=True)
        metrics = engine.run()
        return metrics, seen, {p.name: p.local_time for p in engine.processes}

    #: (time_slack, expected cycles, expected per-process local times)
    GOLDENS = [
        (0.0, 66.0, {"pa": 26.0, "pb": 49.0, "merge": 54.0, "sink": 66.0}),
        (7.0, 66.0, {"pa": 26.0, "pb": 51.0, "merge": 56.0, "sink": 66.0}),
        (200.0, 86.0, {"pa": 52.0, "pb": 75.0, "merge": 80.0, "sink": 86.0}),
    ]

    EXPECTED_ORDER = {
        0.0: [("a", 0), ("a", 1), ("a", 2), ("b", 0), ("a", 3), ("a", 4),
              ("b", 1), ("a", 5), ("b", 2), ("b", 3), ("b", 4)],
        200.0: [("a", 0), ("a", 1), ("b", 0), ("b", 1), ("b", 2), ("a", 2),
                ("a", 3), ("a", 4), ("b", 3), ("a", 5), ("b", 4)],
    }

    @pytest.mark.parametrize("time_slack,cycles,times", GOLDENS)
    def test_pinned_metrics(self, time_slack, cycles, times):
        metrics, _, local_times = self._build_and_run(time_slack)
        assert metrics.cycles == cycles
        assert local_times == times

    @pytest.mark.parametrize("time_slack", [0.0, 200.0])
    def test_pinned_arrival_order(self, time_slack):
        _, seen, _ = self._build_and_run(time_slack)
        assert seen == self.EXPECTED_ORDER[time_slack]

    def test_deterministic_across_runs(self):
        first = self._build_and_run(7.0)
        second = self._build_and_run(7.0)
        assert first[0].cycles == second[0].cycles
        assert first[1] == second[1]
        assert first[2] == second[2]
