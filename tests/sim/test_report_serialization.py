"""SimReport.to_dict / from_dict — symmetric with the sweep cache payloads."""

from dataclasses import replace

import pytest

from repro.data.expert_routing import generate_routing_trace, representative_iteration
from repro.sim import simulate
from repro.sim.runner import SERIALIZED_METRIC_KEYS, SimReport
from repro.sweep.tasks import report_metrics
from repro.workloads.configs import QWEN3_30B_A3B, scaled_config, sda_hardware
from repro.workloads.moe import MoELayerConfig, build_moe_layer


@pytest.fixture(scope="module")
def report() -> SimReport:
    model = replace(scaled_config(QWEN3_30B_A3B, scale=32), name="tiny-4e",
                    num_experts=4, experts_per_token=2)
    trace = generate_routing_trace(model, batch_size=8, num_iterations=2, seed=0)
    assignments = [list(a) for a in representative_iteration(trace)]
    program = build_moe_layer(MoELayerConfig(model=model, batch=8, tile_rows=4))
    return simulate(program.program, program.inputs(assignments),
                    hardware=sda_hardware())


class TestToDict:
    def test_carries_exactly_the_cache_keys(self, report):
        payload = report.to_dict()
        assert tuple(payload) == SERIALIZED_METRIC_KEYS
        assert all(isinstance(v, float) for v in payload.values())

    def test_report_metrics_is_to_dict(self, report):
        assert report_metrics(report) == report.to_dict()

    def test_values_match_the_accessors(self, report):
        payload = report.to_dict()
        assert payload["cycles"] == report.cycles
        assert payload["offchip_traffic_bytes"] == report.offchip_traffic
        assert payload["onchip_memory_bytes"] == report.onchip_memory
        assert payload["compute_utilization"] == report.compute_utilization


class TestFromDict:
    def test_round_trip_is_bit_identical(self, report):
        payload = report.to_dict()
        assert SimReport.from_dict(payload).to_dict() == payload

    def test_restored_accessors_work(self, report):
        restored = SimReport.from_dict(report.to_dict())
        assert restored.cycles == report.cycles
        assert restored.offchip_traffic == report.offchip_traffic
        assert restored.total_flops == report.total_flops
        assert restored.allocated_compute == report.allocated_compute
        assert restored.compute_utilization == report.compute_utilization
        assert restored.offchip_bw_utilization == report.offchip_bw_utilization
        assert restored.summary()["cycles"] == report.cycles

    def test_missing_key_rejected(self, report):
        payload = report.to_dict()
        payload.pop("cycles")
        with pytest.raises(KeyError):
            SimReport.from_dict(payload)
