"""Tests for the simulation engine, channels and memory models."""

import pytest

from repro.core.errors import DeadlockError
from repro.core.stream import DONE, Data, Done
from repro.sim.channel import Channel
from repro.sim.engine import Engine
from repro.sim.hbm import BandwidthLedger, BankedHBM, HBMModel


class TestChannel:
    def test_push_pop_fifo(self):
        ch = Channel("c", latency=2.0)
        ch.push(Data(1), time=0.0)
        ch.push(Data(2), time=5.0)
        ready, token = ch.pop(time=0.0)
        assert token.value == 1 and ready == 2.0
        ready, token = ch.pop(time=10.0)
        assert token.value == 2 and ch.last_pop_time == 10.0

    def test_capacity(self):
        ch = Channel("c", capacity=1)
        ch.push(Data(1), 0.0)
        assert ch.full
        ch.pop(0.0)
        assert ch.empty and not ch.full


class TestEngineBasics:
    def _producer(self, channel, items):
        def gen():
            for item in items:
                yield ("push", channel, Data(item))
                yield ("tick", 10)
            yield ("push", channel, DONE)
        return gen()

    def _consumer(self, channel, sink, per_item=5):
        def gen():
            while True:
                token = yield ("pop", channel)
                if isinstance(token, Done):
                    return
                sink.append(token.value)
                yield ("tick", per_item)
        return gen()

    def test_pipeline_timing(self):
        engine = Engine(timed=True)
        ch = engine.add_channel("ch", latency=1.0)
        seen = []
        engine.add_process("producer", self._producer(ch, [1, 2, 3]))
        engine.add_process("consumer", self._consumer(ch, seen), is_sink=True)
        metrics = engine.run()
        assert seen == [1, 2, 3]
        # producer: 3 items * 10 cycles; consumer finishes a little later
        assert metrics.cycles >= 30

    def test_untimed_mode_counts_no_cycles(self):
        engine = Engine(timed=False)
        ch = engine.add_channel("ch")
        seen = []
        engine.add_process("producer", self._producer(ch, [1, 2]))
        engine.add_process("consumer", self._consumer(ch, seen), is_sink=True)
        metrics = engine.run()
        assert seen == [1, 2]
        assert metrics.cycles == 0

    def test_backpressure_stalls_producer(self):
        engine = Engine(timed=True)
        ch = engine.add_channel("ch", capacity=1, latency=0.0)

        def producer():
            for i in range(4):
                yield ("push", ch, Data(i))
        producer_proc = engine.add_process("producer", producer())

        def consumer():
            for _ in range(4):
                yield ("pop", ch)
                yield ("tick", 100)
        engine.add_process("consumer", consumer(), is_sink=True)
        engine.run()
        # the producer's clock was dragged forward by the consumer's pops
        assert producer_proc.local_time >= 200

    def test_deadlock_detected(self):
        engine = Engine(timed=True)
        ch = engine.add_channel("ch")

        def consumer():
            yield ("pop", ch)  # nobody ever pushes
        engine.add_process("consumer", consumer(), is_sink=True)
        with pytest.raises(DeadlockError) as excinfo:
            engine.run()
        assert any("consumer" in entry for entry in excinfo.value.blocked)

    def test_pop_any_prefers_earliest(self):
        engine = Engine(timed=True)
        a = engine.add_channel("a", latency=0.0)
        b = engine.add_channel("b", latency=0.0)
        order = []

        def producer_a():
            yield ("tick", 50)
            yield ("push", a, Data("late"))

        def producer_b():
            yield ("tick", 5)
            yield ("push", b, Data("early"))

        def merger():
            for _ in range(2):
                index, token = yield ("pop_any", [a, b])
                order.append(token.value)
        engine.add_process("pa", producer_a())
        engine.add_process("pb", producer_b())
        engine.add_process("m", merger(), is_sink=True)
        engine.run()
        assert order[0] == "early"

    def test_hbm_effect_records_traffic(self):
        engine = Engine(timed=True, hbm=HBMModel(bandwidth=64.0, latency=10.0))
        def loader():
            completion = yield ("hbm", 640, False, 0)
            assert completion >= 10.0
        engine.add_process("loader", loader(), is_sink=True)
        metrics = engine.run()
        assert metrics.offchip_traffic == 640


class TestHBMModels:
    def test_bandwidth_ledger_serializes_overlap(self):
        ledger = BandwidthLedger(bandwidth=10.0, window=10.0)
        first = ledger.reserve(0.0, 100)   # occupies 10 windows worth
        second = ledger.reserve(0.0, 100)
        assert second > first

    def test_ledger_out_of_order_requests_not_penalized(self):
        ledger = BandwidthLedger(bandwidth=10.0, window=10.0)
        ledger.reserve(1000.0, 50)          # a "late" request processed first
        early = ledger.reserve(0.0, 50)     # an earlier request arrives afterwards
        assert early <= 20.0

    def test_hbm_model_accounting(self):
        hbm = HBMModel(bandwidth=1024.0, latency=100.0)
        completion = hbm.access(0.0, 2048, is_write=False)
        assert completion == pytest.approx(102.0)
        assert hbm.issue_done(completion) == pytest.approx(2.0)
        hbm.access(0.0, 1024, is_write=True)
        assert hbm.total_bytes_read == 2048 and hbm.total_bytes_written == 1024
        assert 0 < hbm.utilization(100.0) <= 1.0

    def test_banked_hbm_row_hits(self):
        hbm = BankedHBM(num_banks=4, burst_bytes=64, row_bytes=256)
        hbm.access(0.0, 256, address=0)
        hits_before = hbm.row_hits
        hbm.access(10.0, 256, address=0)      # same rows again -> hits
        assert hbm.row_hits > hits_before
        assert hbm.total_bytes == 512
