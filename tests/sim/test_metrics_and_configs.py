"""Tests for the metrics collector, hardware/model configurations and lowering details."""

import pytest

from repro.core.dtypes import TileType
from repro.core.errors import ConfigError, GraphError
from repro.core.graph import InputStream, Program
from repro.core.shape import StreamShape
from repro.core.stream import tokens_from_nested
from repro.core.dtypes import Tile
from repro.ops import Bufferize, LinearOffChipStore, Map
from repro.ops.functions import Scale
from repro.sim import simulate
from repro.sim.executors.common import HardwareConfig, OpContext, OutputBuilder
from repro.sim.lowering import lower
from repro.sim.metrics import SimMetrics
from repro.workloads.configs import (LLAMA_3_1_8B, MIXTRAL_8X7B, QWEN3_30B_A3B, ModelConfig,
                                     scaled_config, sda_hardware)


class TestSimMetrics:
    def test_aggregation(self):
        metrics = SimMetrics()
        metrics.offchip_bandwidth = 1024.0
        metrics.record_compute_bw("mm", 1024)
        metrics.record_element("mm", cycles=10.0, flops=2048)
        metrics.record_element("mm", cycles=10.0, flops=2048)
        metrics.record_offchip("load", 4096, time=5.0)
        metrics.record_offchip("store", 1024, time=50.0, is_write=True)
        metrics.record_onchip("buf", 100)
        metrics.record_onchip("buf", 60)          # keeps the maximum
        metrics.cycles = 100.0
        assert metrics.offchip_traffic == 5120
        assert metrics.offchip_traffic_read == 4096
        assert metrics.offchip_traffic_written == 1024
        assert metrics.onchip_memory == 100
        assert metrics.total_flops == 4096
        assert metrics.allocated_compute == 1024
        assert metrics.compute_utilization() == pytest.approx(4096 / (100 * 1024))
        assert metrics.offchip_bw_utilization() == pytest.approx(5120 / (1024 * 100))
        assert metrics.first_offchip_time == 5.0 and metrics.last_offchip_time == 50.0
        summary = metrics.summary()
        assert summary["cycles"] == 100.0

    def test_zero_division_guards(self):
        metrics = SimMetrics()
        assert metrics.compute_utilization() == 0.0
        assert metrics.offchip_bw_utilization() == 0.0


class TestHardwareConfig:
    def test_defaults_match_section_5_1(self):
        hw = sda_hardware()
        assert hw.onchip_bandwidth == 64.0
        assert hw.offchip_bandwidth == 1024.0
        assert hw.compute_tile == 16
        assert hw.timing_model == "roofline"

    def test_roofline_vs_detailed_timing(self):
        metrics = SimMetrics()
        roofline_ctx = OpContext("op", metrics, HardwareConfig(onchip_bandwidth=64.0),
                                 inputs_from_memory=True, outputs_to_memory=True)
        cycles = roofline_ctx.roofline_cycles(in_bytes=640, flops=1024, out_bytes=0,
                                              compute_bw=512)
        assert cycles == pytest.approx(10.0)   # memory term dominates: 640/64
        detailed_ctx = OpContext("op", metrics,
                                 HardwareConfig(timing_model="detailed"),
                                 inputs_from_memory=True)
        detailed = detailed_ctx.roofline_cycles(in_bytes=1024, flops=8192, out_bytes=0,
                                                compute_bw=512)
        assert detailed >= 1.0 and detailed == float(int(detailed))

    def test_fifo_only_operators_skip_memory_terms(self):
        ctx = OpContext("op", SimMetrics(), HardwareConfig(onchip_bandwidth=64.0))
        assert ctx.roofline_cycles(in_bytes=10_000, flops=64, out_bytes=10_000,
                                   compute_bw=64) == pytest.approx(1.0)


class TestOutputBuilder:
    def test_merge_and_flush(self):
        builder = OutputBuilder()
        assert builder.stop(1) == []
        assert builder.pending == 1
        builder.stop(3)
        tokens = builder.data("x")
        assert [type(t).__name__ for t in tokens] == ["Stop", "Data"]
        assert tokens[0].level == 3
        assert [type(t).__name__ for t in builder.done()] == ["Done"]


class TestModelConfigs:
    def test_full_configs(self):
        assert QWEN3_30B_A3B.num_experts == 128 and QWEN3_30B_A3B.experts_per_token == 8
        assert MIXTRAL_8X7B.num_experts == 8 and MIXTRAL_8X7B.experts_per_token == 2
        assert QWEN3_30B_A3B.kv_dim == 4 * 128
        assert LLAMA_3_1_8B.expert_ffn_params == 3 * 4096 * 14336

    def test_scaled_config_preserves_structure(self):
        scaled = scaled_config(QWEN3_30B_A3B, scale=16)
        assert scaled.num_experts == QWEN3_30B_A3B.num_experts
        assert scaled.experts_per_token == QWEN3_30B_A3B.experts_per_token
        assert scaled.hidden_dim == QWEN3_30B_A3B.hidden_dim // 16
        assert scaled.hidden_dim % 16 == 0
        with pytest.raises(ConfigError):
            scaled_config(QWEN3_30B_A3B, scale=0)

    def test_invalid_model_rejected(self):
        with pytest.raises(ConfigError):
            ModelConfig(name="bad", hidden_dim=64, moe_intermediate_dim=64, num_experts=2,
                        experts_per_token=4, num_layers=1, num_attention_heads=1,
                        num_kv_heads=1, head_dim=16)


class TestLowering:
    @staticmethod
    def _tokens():
        return {"x": tokens_from_nested([[Tile.meta(1, 32), Tile.meta(1, 32)]], 1)}

    def _program(self):
        x = InputStream(StreamShape([1, 2]), TileType(1, 32), name="x").stream
        scaled = Map(x, Scale(2.0), name="scale")
        buffered = Bufferize(scaled.output, rank=1, name="buf")
        store = LinearOffChipStore(scaled.output, name="store")
        return Program([store, buffered.output]), scaled

    def test_memory_neighbour_flags(self):
        program, scaled = self._program()
        lowered = lower(program, inputs=self._tokens())
        ctx = lowered.contexts["scale"]
        # the Map's consumer set includes a Bufferize and an off-chip store
        assert ctx.outputs_to_memory
        assert not ctx.inputs_from_memory

    def test_missing_input_tokens_raise(self):
        program, _ = self._program()
        with pytest.raises(GraphError):
            lower(program, inputs={})

    def test_unknown_output_name_raises(self):
        program, _ = self._program()
        lowered = lower(program, inputs=self._tokens())
        lowered.run()
        with pytest.raises(GraphError):
            lowered.output_tokens("nope")

    def test_report_outputs_and_utilization(self):
        program, _ = self._program()
        report = simulate(program, self._tokens())
        assert report.offchip_traffic == 2 * 32 * 2
        assert 0.0 <= report.offchip_bw_utilization <= 1.0
        assert "store" in report.outputs
