"""Seeded randomized property tests for the simulation engine.

Where ``test_engine_scheduling.py`` pins hand-picked edge cases, these tests
sweep ~50 *randomly generated* configurations (all derived from fixed seeds,
so failures reproduce exactly) and assert the engine's three load-bearing
invariants:

* **determinism** — a simulation is a pure function of (program, inputs,
  hardware): running any random workload/schedule twice must reproduce the
  cycles, traffic, memory and flops bit-for-bit (this is what makes the sweep
  cache and the pooled runner sound),
* **batched-vs-scalar equivalence** — the batched effects (``push_many``,
  ``pop_run``, ``pop_each``) must be observationally identical to the scalar
  effect loops they replace, on arbitrary random pipelines (token counts,
  capacities, latencies, tick costs),
* **conservation** — tokens are neither lost nor duplicated: for every
  channel, ``total_pushed == total_popped + len(queue)`` when the run ends,
  and every program sink must have drained its output channel completely.
"""

import random
from dataclasses import replace

import pytest

from repro.core.stream import DONE, Data, Done
from repro.data.expert_routing import generate_routing_trace, representative_iteration
from repro.schedules import Schedule, parallelization
from repro.sim.engine import Engine
from repro.sim.lowering import lower
from repro.workloads.attention import AttentionConfig, build_attention_layer
from repro.workloads.configs import QWEN3_30B_A3B, scaled_config, sda_hardware
from repro.workloads.moe import MoELayerConfig, build_moe_layer
from repro.workloads.qkv import QKVConfig, build_qkv_layer

#: seeds for the random workload/schedule configurations (one test case each)
WORKLOAD_SEEDS = list(range(30))
#: seeds for the random engine pipelines (batched-vs-scalar equivalence)
PIPELINE_SEEDS = list(range(20))


# ---------------------------------------------------------------------------
# Random configuration generators
# ---------------------------------------------------------------------------

def _random_model(rng: random.Random):
    num_experts = rng.choice([2, 3, 4, 6])
    return replace(
        scaled_config(QWEN3_30B_A3B, scale=rng.choice([32, 64])),
        name=f"prop-{num_experts}e",
        num_experts=num_experts,
        experts_per_token=rng.randint(1, min(2, num_experts)),
    )


def _random_schedule(rng: random.Random, batch: int) -> Schedule:
    if rng.random() < 0.5:
        tiling = Schedule.dynamic().tiling
    else:
        tiling = Schedule.static("s", max(1, rng.choice([1, 2, 4, batch]))).tiling
    strategy = rng.choice(["coarse", "interleave", "dynamic"])
    num_regions = rng.choice([2, 4])
    return Schedule(
        name=f"prop-{strategy}",
        tiling=tiling,
        parallelization=parallelization(strategy, num_regions=num_regions,
                                        coarse_chunk=max(1, batch // num_regions)),
    )


def _random_workload(seed: int):
    """A random (builder, program, inputs) triple — moe / attention / qkv."""
    rng = random.Random(seed)
    model = _random_model(rng)
    batch = rng.choice([1, 2, 3, 5, 8])
    schedule = _random_schedule(rng, batch)
    kind = rng.choice(["moe", "attention", "qkv"])
    if kind == "moe":
        assignments = representative_iteration(generate_routing_trace(
            model, batch_size=batch, num_iterations=1, seed=seed))
        built = build_moe_layer(MoELayerConfig(
            model=model, batch=batch, tile_rows=schedule.moe_tile_rows))
        inputs = built.inputs(assignments)
    elif kind == "attention":
        lengths = [rng.randint(16, 600) for _ in range(batch)]
        built = build_attention_layer(AttentionConfig(
            model=model, batch=batch, strategy=schedule.attention_strategy,
            num_regions=schedule.parallelization.num_regions,
            coarse_chunk=schedule.parallelization.coarse_chunk,
            kv_tile_rows=rng.choice([32, 64]), compute_bw=256))
        inputs = built.inputs(lengths)
    else:
        built = build_qkv_layer(QKVConfig(model=model, batch=batch,
                                          compute_bw=8192))
        inputs = built.inputs()
    return kind, built, inputs


def _run_lowered(built, inputs):
    lowered = lower(built.program, inputs=inputs, hardware=sda_hardware())
    metrics = lowered.run()
    return lowered, metrics


def _metric_tuple(metrics):
    return (metrics.cycles, metrics.offchip_traffic, metrics.onchip_memory,
            metrics.total_flops, metrics.allocated_compute)


# ---------------------------------------------------------------------------
# Determinism + conservation over random workloads
# ---------------------------------------------------------------------------

class TestRandomWorkloadProperties:
    @pytest.mark.parametrize("seed", WORKLOAD_SEEDS)
    def test_deterministic_and_conserving(self, seed):
        kind, built, inputs = _random_workload(seed)
        lowered, metrics = _run_lowered(built, inputs)

        # conservation: every pushed token was popped or is still queued —
        # nothing lost, nothing duplicated
        for channel in lowered.engine.channels:
            assert channel.total_pushed == channel.total_popped + len(channel.queue), \
                f"seed {seed} ({kind}): channel {channel.name} leaks tokens"

        # the program's sinks drained their streams completely
        for name, ctx in lowered.sink_contexts.items():
            assert ctx.results is not None, f"seed {seed}: sink {name} collected nothing"

        # determinism: an independent rebuild + rerun reproduces everything
        kind2, built2, inputs2 = _random_workload(seed)
        assert kind2 == kind
        lowered2, metrics2 = _run_lowered(built2, inputs2)
        assert _metric_tuple(metrics2) == _metric_tuple(metrics), \
            f"seed {seed} ({kind}): rerun diverged"
        pushed = sorted(ch.total_pushed for ch in lowered.engine.channels)
        pushed2 = sorted(ch.total_pushed for ch in lowered2.engine.channels)
        assert pushed2 == pushed, f"seed {seed} ({kind}): channel traffic diverged"


# ---------------------------------------------------------------------------
# Batched-vs-scalar equivalence over random pipelines
# ---------------------------------------------------------------------------

def _run_pipeline(seed: int, batched: bool):
    """A random producer -> consumer pipeline, scalar or batched effects."""
    rng = random.Random(1000 + seed)
    num_tokens = rng.randint(1, 24)
    capacity = rng.choice([None, 1, 2, 4])
    latency = rng.choice([0.0, 1.0, 2.5])
    tick = rng.choice([0, 1, 3, 7])
    run_len = rng.randint(1, 8)
    time_slack = rng.choice([5.0, 200.0, 10_000.0])

    engine = Engine(timed=True, time_slack=time_slack)
    ch = engine.add_channel("ch", capacity=capacity, latency=latency)
    tokens = [Data(i) for i in range(num_tokens)] + [DONE]
    seen = []

    def producer_scalar():
        for token in tokens:
            yield ("push", ch, token)

    def producer_batched():
        yield ("push_many", [ch], tokens)

    def consumer_scalar():
        while True:
            token = yield ("pop", ch)
            if isinstance(token, Done):
                return
            seen.append(token.value)
            if tick:
                yield ("tick", tick)

    def consumer_batched():
        done = False
        while not done:
            run = yield ("pop_run", ch, run_len)
            for token in run:
                if isinstance(token, Done):
                    done = True
                    break
                seen.append(token.value)
                if tick:
                    yield ("tick", tick)

    engine.add_process("p", producer_batched() if batched else producer_scalar())
    engine.add_process("c", consumer_batched() if batched else consumer_scalar(),
                       is_sink=True)
    metrics = engine.run()
    conserved = ch.total_pushed == ch.total_popped + len(ch.queue)
    return seen, metrics.cycles, conserved


class TestRandomPipelineEquivalence:
    @pytest.mark.parametrize("seed", PIPELINE_SEEDS)
    def test_batched_effects_match_scalar_loops(self, seed):
        scalar_seen, scalar_cycles, scalar_ok = _run_pipeline(seed, batched=False)
        batched_seen, batched_cycles, batched_ok = _run_pipeline(seed, batched=True)
        assert scalar_ok and batched_ok
        assert batched_seen == scalar_seen, f"seed {seed}: token order diverged"
        assert batched_seen == sorted(batched_seen), f"seed {seed}: FIFO violated"
        assert batched_cycles == scalar_cycles, \
            f"seed {seed}: batched timing diverged ({batched_cycles} != {scalar_cycles})"

    @pytest.mark.parametrize("seed", PIPELINE_SEEDS[:10])
    def test_pop_each_matches_sequential_pops(self, seed):
        rng = random.Random(2000 + seed)
        num_tokens = rng.randint(1, 12)
        latencies = [rng.choice([0.0, 1.0, 3.0]) for _ in range(3)]
        stamps = [[rng.uniform(0, 20) for _ in range(num_tokens)] for _ in range(3)]

        def run(batched: bool):
            engine = Engine(timed=True)
            channels = [engine.add_channel(f"c{i}", latency=latencies[i])
                        for i in range(3)]
            for i, ch in enumerate(channels):
                for j in range(num_tokens):
                    ch.push(Data((i, j)), stamps[i][j])
            got = []

            def scalar():
                for _ in range(num_tokens):
                    row = []
                    for ch in channels:
                        token = yield ("pop", ch)
                        row.append(token.value)
                    got.append(tuple(row))

            def fused():
                for _ in range(num_tokens):
                    row = yield ("pop_each", channels)
                    got.append(tuple(t.value for t in row))

            proc = engine.add_process("z", fused() if batched else scalar(),
                                      is_sink=True)
            engine.run()
            return got, proc.local_time

        assert run(True) == run(False), f"seed {seed}: pop_each diverged"
