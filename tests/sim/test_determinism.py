"""Engine determinism: the same workload and seed must reproduce exactly.

The sweep cache (and the serial-vs-pooled equivalence in
``tests/sweep/test_runner.py``) is only sound if a simulation run is a pure
function of (program, inputs, hardware).  These tests pin that property for
both the timed and the functional engine, down to the produced output tokens.
"""

from dataclasses import replace

import numpy as np

from repro.data.expert_routing import generate_routing_trace, representative_iteration
from repro.sim import run_functional, simulate
from repro.workloads.attention import AttentionConfig, build_attention_layer
from repro.workloads.configs import QWEN3_30B_A3B, scaled_config, sda_hardware
from repro.workloads.moe import MoELayerConfig, build_moe_layer


def _tiny_model(num_experts: int = 4, top_k: int = 2):
    return replace(scaled_config(QWEN3_30B_A3B, scale=32), name=f"tiny-{num_experts}e",
                   num_experts=num_experts, experts_per_token=top_k)


class TestMoEDeterminism:
    def test_timed_run_reproduces_cycles_and_traffic(self):
        model = _tiny_model()
        trace = generate_routing_trace(model, batch_size=8, num_iterations=2, seed=7)
        assignments = representative_iteration(trace)
        reports = []
        for _ in range(2):
            built = build_moe_layer(MoELayerConfig(model=model, batch=8, tile_rows=4))
            reports.append(simulate(built.program, built.inputs(assignments),
                                    hardware=sda_hardware()))
        first, second = reports
        assert first.cycles == second.cycles
        assert first.offchip_traffic == second.offchip_traffic
        assert first.onchip_memory == second.onchip_memory
        assert first.total_flops == second.total_flops

    def test_functional_run_reproduces_output_tokens(self):
        model = _tiny_model(num_experts=3, top_k=2)
        assignments = [(0, 1), (1, 2), (0, 2), (0, 1)]
        x = np.random.default_rng(11).standard_normal(
            (4, model.hidden_dim)).astype(np.float32) * 0.1
        outputs = []
        for _ in range(2):
            cfg = MoELayerConfig(model=model, batch=4, tile_rows=2,
                                 with_payload=True, collect_output=True)
            built = build_moe_layer(cfg)
            report = run_functional(built.program,
                                    built.inputs(assignments, activations=x))
            outputs.append(np.vstack([np.asarray(v.to_array())
                                      for v in report.output_values(built.output_name)]))
        assert np.array_equal(outputs[0], outputs[1])


class TestAttentionDeterminism:
    def test_dynamic_parallelization_is_deterministic(self):
        model = _tiny_model()
        lengths = [64, 640, 128, 320, 64, 1280, 192, 64]
        cycles = set()
        traffic = set()
        for _ in range(2):
            cfg = AttentionConfig(model=model, batch=8, strategy="dynamic",
                                  kv_tile_rows=64, coarse_chunk=4)
            built = build_attention_layer(cfg)
            report = simulate(built.program, built.inputs(lengths),
                              hardware=sda_hardware())
            cycles.add(report.cycles)
            traffic.add(report.offchip_traffic)
        assert len(cycles) == 1 and len(traffic) == 1
