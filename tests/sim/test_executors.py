"""Functional tests for the operator executors.

Each test builds a tiny program around one operator, runs it through the
engine in functional (untimed) mode and checks the produced token stream.
"""

import numpy as np

from repro.core.builder import selectors_to_tokens, tiles_to_tokens
from repro.core.dims import Dim
from repro.core.dtypes import Address, AddressType, BufferHandle, SelectorType, Tile, TileType
from repro.core.graph import InputStream
from repro.core.shape import StreamShape
from repro.core.stream import Data, Done, Stop, tokens_from_nested, validate_tokens
from repro.ops import (Accum,
    Bufferize,
    EagerMerge,
    Expand,
    FlatMap,
    Flatten,
    LinearOffChipLoadRef,
    LinearOffChipStore,
    Map,
    Partition,
    Promote,
    RandomOffChipLoad,
    RandomOffChipStore,
    Reassemble,
    Repeat,
    Reshape,
    Scan,
    Streamify,
    Zip)
from repro.ops.functions import (Matmul, RetileRow, RetileStreamify, Scale, SumAccum)
from repro.core.graph import Program
from repro.sim import run_functional

from repro.testing import execute


def signature(tokens):
    out = []
    for t in tokens:
        if isinstance(t, Data):
            out.append("d")
        elif isinstance(t, Stop):
            out.append(f"S{t.level}")
        else:
            out.append("D")
    return out


def scalar_tile(value, cols=2):
    return Tile.from_array(np.full((1, cols), float(value), dtype=np.float32))


def tile_values(tokens):
    return [t.value.to_array()[0, 0] for t in tokens if isinstance(t, Data)]


def make_input(shape, dtype=None, name="in"):
    return InputStream(StreamShape(shape), dtype or TileType(1, 2), name=name).stream


class TestMapScan:
    def test_map_scales_values(self):
        x = make_input([3])
        out = Map(x, Scale(2.0)).output
        tokens = execute(out, {"in": tokens_from_nested([scalar_tile(v) for v in (1, 2, 3)], 0)})
        assert tile_values(tokens) == [2.0, 4.0, 6.0]
        assert signature(tokens) == ["d", "d", "d", "D"]

    def test_map_two_inputs_lockstep(self):
        a = make_input([2, 2], name="a")
        b = make_input([2, 2], name="b")
        out = Map((a, b), Matmul()).output
        a_tokens = tokens_from_nested([[Tile.from_array(np.eye(2, dtype=np.float32))] * 2] * 2, 1)
        b_tokens = tokens_from_nested([[scalar_tile(3, 2)] * 2] * 2, 1)
        # matmul of (2x2 identity) @ (1x2) is shape-incompatible; use 2x2 @ 2x2
        b_tokens = tokens_from_nested(
            [[Tile.from_array(np.full((2, 2), 3.0, dtype=np.float32))] * 2] * 2, 1)
        tokens = execute(out, {"a": a_tokens, "b": b_tokens})
        assert signature(tokens) == ["d", "d", "S1", "d", "d", "S1", "D"]
        assert np.allclose(tokens[0].value.to_array(), 3.0)

    def test_scan_emits_running_state(self):
        x = make_input([2, 2])
        out = Scan(x, SumAccum(), rank=1).output
        tokens = execute(out, {"in": tokens_from_nested(
            [[scalar_tile(1), scalar_tile(2)], [scalar_tile(5), scalar_tile(7)]], 1)})
        assert tile_values(tokens) == [1, 3, 5, 12]
        assert signature(tokens) == ["d", "d", "S1", "d", "d", "S1", "D"]


class TestAccum:
    def test_reduces_groups(self):
        x = make_input([2, 3])
        out = Accum(x, SumAccum(), rank=1).output
        tokens = execute(out, {"in": tokens_from_nested(
            [[scalar_tile(1), scalar_tile(2), scalar_tile(3)],
             [scalar_tile(10), scalar_tile(20), scalar_tile(30)]], 1)})
        assert tile_values(tokens) == [6, 60]
        assert signature(tokens) == ["d", "d", "D"]

    def test_rank2_reduction_keeps_outer_stop_structure(self):
        x = make_input([2, 2, 2])
        out = Accum(x, SumAccum(), rank=2).output
        nested = [[[scalar_tile(1), scalar_tile(1)], [scalar_tile(1), scalar_tile(1)]],
                  [[scalar_tile(2), scalar_tile(2)], [scalar_tile(2), scalar_tile(2)]]]
        tokens = execute(out, {"in": tokens_from_nested(nested, 2)})
        assert tile_values(tokens) == [4, 8]

    def test_retile_row_packs(self):
        x = make_input([2, 2])
        out = Accum(x, RetileRow(), rank=1).output
        tokens = execute(out, {"in": tokens_from_nested(
            [[scalar_tile(1), scalar_tile(2)], [scalar_tile(3), scalar_tile(4)]], 1)})
        tiles = [t.value for t in tokens if isinstance(t, Data)]
        assert [t.rows for t in tiles] == [2, 2]


class TestFlatMap:
    def test_expansion_and_structure(self):
        x = make_input([2])
        out = FlatMap(x, RetileStreamify(1), rank=1).output
        packed = [Tile.from_array(np.arange(4, dtype=np.float32).reshape(2, 2)),
                  Tile.from_array(np.arange(2, dtype=np.float32).reshape(1, 2))]
        tokens = execute(out, {"in": tiles_to_tokens(packed)})
        assert signature(tokens) == ["d", "d", "S1", "d", "S1", "D"]


class TestShapeExecutors:
    def test_flatten_drops_inner_boundary(self):
        x = make_input([2, 2])
        out = Flatten(x, 0, 1).output
        tokens = execute(out, {"in": tokens_from_nested(
            [[scalar_tile(1), scalar_tile(2)], [scalar_tile(3), scalar_tile(4)]], 1)})
        assert signature(tokens) == ["d", "d", "d", "d", "D"]

    def test_reshape_pads_last_chunk(self):
        x = make_input([Dim.dynamic("D")])
        op = Reshape(x, chunk_size=2, level=0, pad=scalar_tile(0))
        data_tokens = execute(op.data, {"in": tiles_to_tokens([scalar_tile(v) for v in (1, 2, 3)])})
        assert signature(data_tokens) == ["d", "d", "S1", "d", "d", "S1", "D"]
        assert tile_values(data_tokens) == [1, 2, 3, 0]
        pad_tokens = execute(op.padding, {"in": tiles_to_tokens([scalar_tile(v) for v in (1, 2, 3)])})
        assert [t.value for t in pad_tokens if isinstance(t, Data)] == [False, False, False, True]

    def test_promote_adds_outer_stop(self):
        x = make_input([3])
        out = Promote(x).output
        tokens = execute(out, {"in": tiles_to_tokens([scalar_tile(v) for v in (1, 2, 3)])})
        assert signature(tokens) == ["d", "d", "d", "S1", "D"]

    def test_promote_of_empty_stream(self):
        x = make_input([0])
        out = Promote(x).output
        tokens = execute(out, {"in": tokens_from_nested([], 0)})
        assert signature(tokens) == ["D"]

    def test_repeat(self):
        x = make_input([2])
        out = Repeat(x, count=3).output
        tokens = execute(out, {"in": tiles_to_tokens([scalar_tile(7), scalar_tile(9)])})
        assert signature(tokens) == ["d", "d", "d", "S1", "d", "d", "d", "S1", "D"]
        assert tile_values(tokens) == [7, 7, 7, 9, 9, 9]

    def test_expand_follows_reference(self):
        data = make_input([2], name="data")
        ref = make_input([2, Dim.ragged("L")], name="ref")
        out = Expand(data, ref, rank=1).output
        ref_tokens = tokens_from_nested([[scalar_tile(0)] * 3, [scalar_tile(0)] * 2], 1)
        tokens = execute(out, {"data": tiles_to_tokens([scalar_tile(5), scalar_tile(6)]),
                               "ref": ref_tokens})
        assert tile_values(tokens) == [5, 5, 5, 6, 6]
        assert signature(tokens) == ["d", "d", "d", "S1", "d", "d", "S1", "D"]

    def test_zip_pairs_elements(self):
        a = make_input([2], name="a")
        b = make_input([2], name="b")
        out = Zip(a, b).output
        tokens = execute(out, {"a": tiles_to_tokens([scalar_tile(1), scalar_tile(2)]),
                               "b": tiles_to_tokens([scalar_tile(3), scalar_tile(4)])})
        pairs = [t.value for t in tokens if isinstance(t, Data)]
        assert [p[0].to_array()[0, 0] for p in pairs] == [1, 2]
        assert [p[1].to_array()[0, 0] for p in pairs] == [3, 4]


class TestRoutingExecutors:
    def test_partition_routes_by_selector(self):
        x = make_input([4, 1], name="x")
        sel = InputStream(StreamShape([4]), SelectorType(2), name="sel").stream
        op = Partition(x, sel, rank=1, num_consumers=2)
        inputs = {
            "x": tokens_from_nested([[scalar_tile(v)] for v in (1, 2, 3, 4)], 1),
            "sel": selectors_to_tokens([0, 1, 0, 1], 2),
        }
        program = Program([op.outputs[0], op.outputs[1]])
        report = run_functional(program, inputs)
        left = report.output_tokens(op.outputs[0].name)
        right = report.output_tokens(op.outputs[1].name)
        assert tile_values(left) == [1, 3]
        assert tile_values(right) == [2, 4]
        assert signature(left) == ["d", "S1", "d", "S1", "D"]

    def test_partition_multi_hot_broadcasts(self):
        x = make_input([2, 1], name="x")
        sel = InputStream(StreamShape([2]), SelectorType(2), name="sel").stream
        op = Partition(x, sel, rank=1, num_consumers=2)
        inputs = {
            "x": tokens_from_nested([[scalar_tile(1)], [scalar_tile(2)]], 1),
            "sel": selectors_to_tokens([[0, 1], [1]], 2),
        }
        program = Program(list(op.outputs))
        report = run_functional(program, inputs)
        assert tile_values(report.output_tokens(op.outputs[0].name)) == [1]
        assert tile_values(report.output_tokens(op.outputs[1].name)) == [1, 2]

    def test_reassemble_gathers_in_selector_order(self):
        sel = InputStream(StreamShape([4]), SelectorType(2), name="sel").stream
        b0 = make_input([2, 1], name="b0")
        b1 = make_input([2, 1], name="b1")
        out = Reassemble([b0, b1], sel, rank=1).output
        inputs = {
            "sel": selectors_to_tokens([0, 1, 1, 0], 2),
            "b0": tokens_from_nested([[scalar_tile(10)], [scalar_tile(11)]], 1),
            "b1": tokens_from_nested([[scalar_tile(20)], [scalar_tile(21)]], 1),
        }
        tokens = execute(out, inputs)
        assert tile_values(tokens) == [10, 20, 21, 11]
        # each selector group closes with an incremented stop token (Figure 4)
        assert signature(tokens) == ["d", "S2", "d", "S2", "d", "S2", "d", "S2", "D"]

    def test_eager_merge_reports_origin(self):
        b0 = make_input([2, 1], name="b0")
        b1 = make_input([1, 1], name="b1")
        op = EagerMerge([b0, b1], rank=1)
        inputs = {
            "b0": tokens_from_nested([[scalar_tile(1)], [scalar_tile(2)]], 1),
            "b1": tokens_from_nested([[scalar_tile(9)]], 1),
        }
        program = Program([op.data, op.selector])
        report = run_functional(program, inputs)
        data = report.output_tokens(op.data.name)
        selectors = report.output_values(op.selector.name)
        assert sorted(tile_values(data)) == [1, 2, 9]
        assert len(selectors) == 3
        assert {s.indices[0] for s in selectors} == {0, 1}


class TestMemoryExecutors:
    def test_linear_load_reads_underlying(self):
        stored = np.arange(64 * 128, dtype=np.float32).reshape(64, 128)
        ref = make_input([2], name="ref")
        op = LinearOffChipLoadRef(ref=ref, in_mem_shape=(64, 128), tile_shape=(64, 64),
                                  stride_tiled=(2, 1), shape_tiled=(1, 2),
                                  underlying=stored)
        tokens = execute(op.output, {"ref": tiles_to_tokens([scalar_tile(0), scalar_tile(0)])},
                         timed=True)
        tiles = [t.value for t in tokens if isinstance(t, Data)]
        assert len(tiles) == 4  # two reads of two tiles each
        assert np.allclose(tiles[0].to_array(), stored[:, :64])
        assert np.allclose(tiles[1].to_array(), stored[:, 64:])
        assert signature(tokens) == ["d", "d", "S2", "d", "d", "S2", "D"]

    def test_linear_store_collects_and_counts_traffic(self):
        x = make_input([3])
        store = LinearOffChipStore(x, name="store")
        program = Program([store])
        report = run_functional(program, {"in": tiles_to_tokens(
            [scalar_tile(v, cols=4) for v in (1, 2, 3)])})
        assert report.metrics.offchip_traffic == 3 * 4 * 2
        assert len(report.output_tokens("store")) == 4  # 3 data + Done

    def test_random_load_and_store(self):
        addr = InputStream(StreamShape([2, Dim.ragged("L")]), AddressType(), name="addr").stream
        load = RandomOffChipLoad(addr, tile_shape=(4, 8))
        addr_tokens = tokens_from_nested([[Address(0), Address(1)], [Address(2)]], 1)
        tokens = execute(load.output, {"addr": addr_tokens}, timed=True)
        assert signature(tokens) == ["d", "d", "S1", "d", "S1", "D"]
        tiles = [t.value for t in tokens if isinstance(t, Data)]
        assert all(t.shape == (4, 8) for t in tiles)

        waddr = InputStream(StreamShape([2]), AddressType(), name="waddr").stream
        wdata = make_input([2], name="wdata")
        store = RandomOffChipStore(waddr, wdata, name="rstore")
        acks = execute(store.outputs[0], {
            "waddr": tiles_to_tokens([Address(0), Address(4)]),
            "wdata": tiles_to_tokens([scalar_tile(1), scalar_tile(2)]),
        })
        assert [t.value for t in acks if isinstance(t, Data)] == [True, True]

    def test_bufferize_streamify_round_trip(self):
        x = make_input([2, 2], name="x")
        buffers = Bufferize(x, rank=1)
        replay = Streamify(buffers.output, count=2)
        tokens = execute(replay.output, {"x": tokens_from_nested(
            [[scalar_tile(1), scalar_tile(2)], [scalar_tile(3), scalar_tile(4)]], 1)})
        # each buffer (a row of 2 tiles) is replayed twice
        assert tile_values(tokens) == [1, 2, 1, 2, 3, 4, 3, 4]
        validate_tokens(tokens, rank=replay.output.rank)

    def test_bufferize_records_buffer_bytes(self):
        x = make_input([1, 3], name="x")
        buffers = Bufferize(x, rank=1)
        program = Program([buffers.output])
        report = run_functional(program, {"x": tokens_from_nested(
            [[scalar_tile(1), scalar_tile(2), scalar_tile(3)]], 1)})
        handle = report.output_values(buffers.output.name)[0]
        assert isinstance(handle, BufferHandle)
        assert handle.num_values == 3
        assert report.metrics.per_op["bufferize_%d" % buffers.node_id].max_buffer_bytes > 0 or \
            report.metrics.per_op[buffers.name].max_buffer_bytes > 0
