"""Tests for the HDL-substitute reference simulator and hierarchical tiling."""

import numpy as np

from repro.hdl.hierarchical import (hierarchical_matmul_inputs, hierarchical_matmul_program,
                                    hierarchical_matmul_reference, matmul_mac_tiles,
                                    physical_tile_count, split_tile)
from repro.hdl.reference import reference_hardware, reference_simulate
from repro.core.dtypes import Tile
from repro.core.stream import data_values
from repro.sim import run_functional, simulate
from repro.workloads.swiglu import SwiGLUConfig, SwiGLUTiling, build_swiglu_layer


class TestTileDecomposition:
    def test_physical_tile_count(self):
        assert physical_tile_count(16, 16) == 1
        assert physical_tile_count(17, 16) == 2 * 1
        assert physical_tile_count(64, 48) == 4 * 3
        assert physical_tile_count(0, 16) == 0

    def test_matmul_mac_tiles(self):
        assert matmul_mac_tiles(16, 16, 16) == 1
        assert matmul_mac_tiles(32, 64, 16) == 2 * 4 * 1

    def test_split_tile_pads_edges(self, rng):
        tile = Tile.from_array(rng.standard_normal((20, 18)).astype(np.float32))
        grid = split_tile(tile, 16, 16)
        assert len(grid) == 2 and len(grid[0]) == 2
        assert all(t.shape == (16, 16) for row in grid for t in row)
        assert np.allclose(grid[0][0].to_array(), tile.to_array()[:16, :16])
        # padded region is zero
        assert np.allclose(grid[1][1].to_array()[4:, :], 0)


class TestHierarchicalMatmul:
    def test_figure18_transform_matches_numpy(self, rng):
        a = rng.standard_normal((32, 32)).astype(np.float32)
        b = rng.standard_normal((32, 16)).astype(np.float32)
        program, output_name = hierarchical_matmul_program(m=32, k=32)
        report = run_functional(program, hierarchical_matmul_inputs(a, b))
        tiles = [v for v in data_values(report.output_tokens(output_name))]
        reference = hierarchical_matmul_reference(a, b)
        assert len(tiles) == len(reference) == 2
        for produced, expected in zip(tiles, reference):
            assert np.allclose(produced.to_array(), expected.to_array(), atol=1e-3)


class TestReferenceSimulator:
    def test_detailed_model_differs_but_correlates(self):
        """The detailed reference produces different absolute cycles but the
        same off-chip traffic and the same ordering across tile sizes."""
        cfg = SwiGLUConfig()
        tilings = [SwiGLUTiling(16, 256, 64), SwiGLUTiling(64, 256, 64)]
        step, hdl = [], []
        for tiling in tilings:
            step_report = simulate(build_swiglu_layer(cfg, tiling))
            hdl_report = reference_simulate(build_swiglu_layer(cfg, tiling))
            assert step_report.offchip_traffic == hdl_report.offchip_traffic
            step.append(step_report.cycles)
            hdl.append(hdl_report.cycles)
        # both models agree that the larger batch tile is faster (memory bound)
        assert step[1] < step[0]
        assert hdl[1] < hdl[0]

    def test_reference_hardware_flags(self):
        hw = reference_hardware()
        assert hw.timing_model == "detailed"
        assert hw.compute_tile == 16
