"""Tests for the symbolic traffic/memory analysis, Pareto metrics and roofline."""

import numpy as np
import pytest

from repro.analysis.intensity import operational_intensity, program_flops_estimate
from repro.analysis.memory import onchip_memory_expr, program_onchip_memory
from repro.analysis.pareto import (ParetoPoint, closest_baseline,
                                   memory_saving_at_matched_performance, pareto_front,
                                   pareto_improvement_distance, speedup_at_matched_memory)
from repro.analysis.roofline import (RooflineModel, effective_bandwidth, figure1_rows)
from repro.analysis.traffic import offchip_traffic_expr, program_offchip_traffic
from repro.core import symbolic as sym
from repro.core.dims import Dim
from repro.core.dtypes import TileType
from repro.core.graph import InputStream, Program
from repro.core.shape import StreamShape
from repro.ops import Accum, Bufferize, LinearOffChipLoadRef, LinearOffChipStore, Map
from repro.ops.functions import Matmul, RetileRow, Scale
from repro.sim import simulate
from repro.workloads.simple_moe import SimpleMoEConfig, build_simple_moe


def weight_load_program():
    ref = InputStream(StreamShape([Dim.dynamic("D")]), TileType(1, 64), name="ref").stream
    load = LinearOffChipLoadRef(ref=ref, in_mem_shape=(64, 256), tile_shape=(64, 64),
                                stride_tiled=(4, 1), shape_tiled=(1, 4), name="load")
    store = LinearOffChipStore(load.output, name="store")
    return Program([store]), load, store


class TestTraffic:
    def test_load_traffic_expression(self):
        program, load, store = weight_load_program()
        expr = offchip_traffic_expr(load)
        # D reads of 4 tiles of 64x64 bf16 each
        assert sym.evaluate(expr, {"D": 3}) == 3 * 4 * 64 * 64 * 2

    def test_store_traffic_counts_input(self):
        program, load, store = weight_load_program()
        expr = offchip_traffic_expr(store)
        assert sym.evaluate(expr, {"D": 2}) == 2 * 4 * 64 * 64 * 2

    def test_non_memory_ops_contribute_zero(self):
        x = InputStream(StreamShape([4]), TileType(1, 8), name="x").stream
        op = Map(x, Scale(1.0))
        assert offchip_traffic_expr(op) == sym.Const(0)

    def test_program_total_and_simulated_agree(self):
        """The symbolic frontend's traffic matches the simulator's measurement
        once dynamic symbols are bound (Section 4.2)."""
        cfg = SimpleMoEConfig(num_rows=8, num_experts=2, tile_rows=4)
        built = build_simple_moe(cfg, seed=0)
        routing = [0, 1, 0, 1, 0, 1, 0, 1]
        activations = np.zeros((8, cfg.hidden_dim), dtype=np.float32)
        report = simulate(built.program, built.inputs(activations, routing))
        symbolic = program_offchip_traffic(built.program)
        # bind every remaining symbol with the observed per-expert group counts (1 each)
        bindings = {name: 1 for name in
                    {s.name for s in sym.as_expr(symbolic).symbols()}}
        assert sym.evaluate(symbolic, bindings) == report.offchip_traffic


class TestMemory:
    def test_offchip_op_requirement_is_double_buffered_tile(self):
        program, load, store = weight_load_program()
        assert sym.evaluate(onchip_memory_expr(load)) == 2 * 64 * 64 * 2

    def test_bufferize_requirement(self):
        x = InputStream(StreamShape([2, Dim.dynamic("D")]), TileType(1, 32), name="x").stream
        buf = Bufferize(x, rank=1)
        expr = onchip_memory_expr(buf)
        tile_bytes = 32 * 2
        assert sym.evaluate(expr, {"D": 5}) == tile_bytes + 2 * 5 * tile_bytes

    def test_matmul_map_requirement(self):
        a = InputStream(StreamShape([4]), TileType(8, 64), name="a").stream
        b = InputStream(StreamShape([4]), TileType(64, 64), name="b").stream
        op = Map((a, b), Matmul())
        expected = 16 * 64 * 2 + 64 * 64 * 2
        assert sym.evaluate(onchip_memory_expr(op, compute_tile=16)) == expected

    def test_accum_requirement_is_output_dtype(self):
        x = InputStream(StreamShape([2, 4]), TileType(4, 32), name="x").stream
        op = Accum(x, RetileRow(), rank=1, out_dtype=TileType(16, 32))
        assert sym.evaluate(onchip_memory_expr(op)) == 16 * 32 * 2

    def test_program_metrics_symbolic_until_bound(self):
        cfg = SimpleMoEConfig(num_rows=8, num_experts=2, tile_rows=None)
        built = build_simple_moe(cfg, seed=0)
        traffic = program_offchip_traffic(built.program)
        # dynamic tiling leaves the per-expert read counts symbolic
        assert isinstance(traffic, sym.Expr) and traffic.symbols()
        bound = program_offchip_traffic(
            built.program, {s.name: 1 for s in traffic.symbols()})
        assert isinstance(bound, int) and bound > 0
        memory = program_onchip_memory(built.program)
        assert sym.maybe_evaluate(memory, {s.name: 4 for s in sym.as_expr(memory).symbols()}) > 0


class TestIntensity:
    def test_flops_estimate_counts_matmuls(self):
        a = InputStream(StreamShape([3]), TileType(8, 64), name="a").stream
        b = InputStream(StreamShape([3]), TileType(64, 64), name="b").stream
        op = Map((a, b), Matmul())
        store = LinearOffChipStore(op.output)
        program = Program([store])
        flops = program_flops_estimate(program)
        assert sym.evaluate(flops) == 3 * 2 * 8 * 64 * 64

    def test_operational_intensity_from_measurements(self):
        program, load, store = weight_load_program()
        assert operational_intensity(program, flops=1000.0, traffic_bytes=500.0) == 2.0
        assert operational_intensity(program, flops=0.0, traffic_bytes=0.0) == 0.0


class TestPareto:
    def setup_method(self):
        self.baseline = [
            ParetoPoint(100, 10, "t8"),
            ParetoPoint(60, 20, "t16"),
            ParetoPoint(40, 40, "t32"),
            ParetoPoint(80, 50, "dominated"),
        ]

    def test_front_excludes_dominated(self):
        front = pareto_front(self.baseline)
        assert {p.label for p in front} == {"t8", "t16", "t32"}

    def test_pid_beyond_frontier(self):
        point = ParetoPoint(30, 15, "dynamic")
        assert pareto_improvement_distance(point, self.baseline) > 1.0

    def test_pid_on_frontier_is_one(self):
        assert pareto_improvement_distance(ParetoPoint(60, 20), self.baseline) == \
            pytest.approx(1.0)

    def test_pid_dominated_below_one(self):
        assert pareto_improvement_distance(ParetoPoint(200, 200), self.baseline) < 1.0

    def test_matched_comparisons(self):
        point = ParetoPoint(30, 18, "dynamic")
        assert closest_baseline(point, self.baseline, "memory").label == "t16"
        assert speedup_at_matched_memory(point, self.baseline) == pytest.approx(2.0)
        assert memory_saving_at_matched_performance(point, self.baseline) > 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            pareto_improvement_distance(ParetoPoint(0, 1), self.baseline)
        with pytest.raises(ValueError):
            pareto_improvement_distance(ParetoPoint(1, 1), [])


class TestRoofline:
    def test_attainable(self):
        platform = RooflineModel("toy", peak_compute=100.0, peak_bandwidth=10.0)
        assert platform.attainable(1.0) == 10.0
        assert platform.attainable(1000.0) == 100.0
        assert platform.is_memory_bound(1.0)
        assert platform.ridge_point() == 10.0

    def test_effective_bandwidth(self):
        assert effective_bandwidth(26.8, 0.5) == pytest.approx(13.4)
        with pytest.raises(ValueError):
            effective_bandwidth(10.0, 1.5)

    def test_figure1_rows_match_section2_claims(self):
        rows = figure1_rows()
        assert len(rows) == 12
        for row in rows:
            assert row["effective_bandwidth_tbs"] <= row["peak_bandwidth_tbs"]
        gpu = [r for r in rows if r["platform"] == "8xH100"]
        sda = [r for r in rows if r["platform"].startswith("SN40L")]
        assert max(r["fraction_of_peak"] for r in gpu) < 0.5
        assert min(r["fraction_of_peak"] for r in sda) > 0.5
