"""Platforms: registry, presets, the one resolution path, grids, JSON."""

import json

import pytest

from repro.core.errors import ConfigError
from repro.platforms import (PLATFORMS, Platform, default_platform, get_platform,
                             platform_grid, platform_names, register_platform,
                             resolve_platform, resolve_platforms)
from repro.sim.executors.common import HardwareConfig
from repro.workloads.configs import sda_hardware


class TestPresets:
    def test_shipped_presets_registered(self):
        for name in ("sda", "sda-hbm256", "sda-detailed"):
            assert name in platform_names()
            assert get_platform(name).description

    def test_default_platform_is_the_old_default_hardware(self):
        """The acceptance anchor: default platform == sda_hardware() exactly,
        so every pre-platform result is reproduced bit for bit."""
        assert default_platform().name == "sda"
        assert default_platform().hardware == sda_hardware()

    def test_hbm256_is_figure8_hardware(self):
        assert get_platform("sda-hbm256").hardware == \
            sda_hardware(onchip_bandwidth=256.0)

    def test_detailed_timing_model(self):
        platform = get_platform("sda-detailed")
        assert platform.hardware.timing_model == "detailed"
        assert platform.hardware.onchip_bandwidth == sda_hardware().onchip_bandwidth


class TestRegistry:
    def test_register_and_lookup(self):
        platform = Platform(name="_test-reg", hardware=HardwareConfig(
            onchip_bandwidth=32.0), description="test")
        register_platform(platform)
        try:
            assert get_platform("_test-reg") is platform
            assert "_test-reg" in platform_names()
        finally:
            del PLATFORMS["_test-reg"]

    def test_duplicate_rejected(self):
        with pytest.raises(ConfigError):
            register_platform(Platform(name="sda"))

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            get_platform("nonexistent-platform")

    def test_invalid_platform_rejected(self):
        with pytest.raises(ConfigError):
            Platform(name="")
        with pytest.raises(ConfigError):
            Platform(name="bad", hardware="not-hardware")
        with pytest.raises(ConfigError):
            register_platform("not-a-platform")


class TestResolution:
    def test_none_is_default(self):
        assert resolve_platform(None) is default_platform()

    def test_name_goes_through_registry(self):
        assert resolve_platform("sda-hbm256") is get_platform("sda-hbm256")

    def test_platform_passes_through(self):
        platform = Platform(name="adhoc", hardware=HardwareConfig(onchip_bandwidth=8.0))
        assert resolve_platform(platform) is platform

    def test_known_hardware_resolves_to_its_preset(self):
        """Raw sda_hardware() values (the legacy call-site default) map back to
        the named presets, so legacy hardware= spellings share cache identity
        with the platform-native path."""
        assert resolve_platform(sda_hardware()) is get_platform("sda")
        assert resolve_platform(sda_hardware(onchip_bandwidth=256.0)) is \
            get_platform("sda-hbm256")

    def test_adhoc_hardware_wraps_deterministically(self):
        hw = HardwareConfig(onchip_bandwidth=12.5)
        first, second = resolve_platform(hw), resolve_platform(hw)
        assert first.name == second.name
        assert first.name.startswith("custom-")
        assert first.hardware == hw

    def test_unresolvable_rejected(self):
        with pytest.raises(ConfigError):
            resolve_platform(123)

    def test_resolve_platforms_shapes(self):
        single = resolve_platforms(None)
        assert list(single) == ["sda"]
        mapping = resolve_platforms({"base": None, "fast": "sda-hbm256"})
        assert list(mapping) == ["base", "fast"]
        assert mapping["fast"] is get_platform("sda-hbm256")
        sequence = resolve_platforms(["sda", "sda-detailed"])
        assert list(sequence) == ["sda", "sda-detailed"]
        with pytest.raises(ConfigError):
            resolve_platforms(["sda", "sda"])
        with pytest.raises(ConfigError):
            resolve_platforms({})


class TestCacheIdentity:
    def test_description_is_not_identity(self):
        """A platform's cache identity is exactly name + hardware: equal-name,
        equal-hardware platforms hash identically whatever their description
        says, so documentation edits can never invalidate warm caches."""
        from repro.sweep import stable_hash

        a = Platform(name="twin", hardware=HardwareConfig(), description="one")
        b = Platform(name="twin", hardware=HardwareConfig(), description="two")
        assert a == b
        assert stable_hash(a) == stable_hash(b)
        # the grid-derived detailed variant shares identity with the preset
        derived = platform_grid(timing_models=("detailed",))["sda-detailed"]
        assert stable_hash(derived) == stable_hash(get_platform("sda-detailed"))

    def test_name_and_hardware_are_identity(self):
        from repro.sweep import stable_hash

        base = Platform(name="twin", hardware=HardwareConfig())
        assert stable_hash(Platform(name="other", hardware=HardwareConfig())) != \
            stable_hash(base)
        assert stable_hash(Platform(name="twin", hardware=HardwareConfig(
            onchip_bandwidth=8.0))) != stable_hash(base)


class TestSerialization:
    def test_json_round_trip(self):
        platform = get_platform("sda-detailed")
        payload = json.loads(json.dumps(platform.to_dict()))
        rebuilt = Platform.from_dict(payload)
        assert rebuilt == platform
        assert rebuilt.hardware == platform.hardware

    def test_round_trip_of_custom_platform(self):
        platform = Platform(name="exotic", description="wide tiles",
                            hardware=HardwareConfig(compute_tile=32,
                                                    offchip_bandwidth=2048.0,
                                                    channel_capacity=4))
        assert Platform.from_dict(platform.to_dict()) == platform


class TestGrid:
    def test_grid_includes_base_and_variants(self):
        grid = platform_grid(onchip_bandwidths=(64.0, 128.0, 256.0))
        assert list(grid)[0] == "sda"
        assert grid["sda-onchip128"].hardware.onchip_bandwidth == 128.0
        assert grid["sda-onchip256"].hardware.onchip_bandwidth == 256.0
        # the base value does not produce a duplicate variant
        assert "sda-onchip64" not in grid

    def test_grid_multi_knob(self):
        grid = platform_grid(compute_tiles=(16, 32), timing_models=("detailed",),
                             offchip_bandwidths=(2048.0,))
        assert set(grid) == {"sda", "sda-tile32", "sda-detailed", "sda-offchip2048"}
        assert grid["sda-detailed"].hardware.timing_model == "detailed"
        assert grid["sda-tile32"].hardware.compute_tile == 32

    def test_grid_from_named_base(self):
        grid = platform_grid("sda-hbm256", onchip_bandwidths=(64.0,), prefix="v")
        assert set(grid) == {"sda-hbm256", "v-onchip64"}
        assert grid["v-onchip64"].hardware.onchip_bandwidth == 64.0
        # derived platforms keep the base's other knobs
        assert grid["v-onchip64"].hardware.offchip_bandwidth == \
            get_platform("sda-hbm256").hardware.offchip_bandwidth
