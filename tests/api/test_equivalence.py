"""API equivalence: the facade reproduces the pre-redesign metrics bit-for-bit.

Two layers of pinning:

* adapter-level — a workload adapter run under a unified schedule produces the
  *exact* metrics dictionary of a hand-constructed builder config simulation,
* figure-level — the registered ``figure9`` scenario reproduces the golden
  values recorded from the pre-redesign code path
  (``tests/experiments/goldens_smoke.json``) with exact equality, not just the
  golden test's 2% tolerance.
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.api import AttentionWorkload, MoEWorkload, Schedule, get_scenario, run
from repro.data.expert_routing import generate_routing_trace, representative_iteration
from repro.experiments import figure9_10
from repro.experiments.common import SMOKE_SCALE
from repro.schedules import parallelization
from repro.sim import simulate
from repro.workloads.attention import AttentionConfig, build_attention_layer
from repro.workloads.configs import QWEN3_30B_A3B, scaled_config, sda_hardware
from repro.workloads.moe import MoELayerConfig, build_moe_layer

GOLDENS_PATH = Path(__file__).parent.parent / "experiments" / "goldens_smoke.json"


@pytest.fixture(scope="module")
def tiny_model():
    return replace(scaled_config(QWEN3_30B_A3B, scale=32), name="tiny-4e",
                   num_experts=4, experts_per_token=2)


@pytest.fixture(scope="module")
def routing(tiny_model):
    trace = generate_routing_trace(tiny_model, batch_size=8, num_iterations=2, seed=0)
    return [list(a) for a in representative_iteration(trace)]


class TestAdapterEquivalence:
    def test_moe_adapter_matches_direct_config(self, tiny_model, routing):
        hw = sda_hardware()
        for schedule, tile_rows in ((Schedule.static("tile=4", 4), 4),
                                    (Schedule.dynamic(), None)):
            via_api = MoEWorkload(model=tiny_model, batch=8,
                                  assignments=routing).run(schedule, hw)
            config = MoELayerConfig(model=tiny_model, batch=8, tile_rows=tile_rows)
            program = build_moe_layer(config)
            direct = simulate(program.program, program.inputs(routing), hardware=hw)
            assert via_api == direct.to_dict()

    def test_moe_adapter_matches_timemux_config(self, tiny_model, routing):
        hw = sda_hardware()
        schedule = Schedule.dynamic(num_experts=4, timemux_regions=2)
        via_api = MoEWorkload(model=tiny_model, batch=8, assignments=routing,
                              combine_output=False).run(schedule, hw)
        config = MoELayerConfig(model=tiny_model, batch=8, tile_rows=None,
                                num_regions=2, combine_output=False)
        program = build_moe_layer(config)
        direct = simulate(program.program, program.inputs(routing), hardware=hw)
        assert via_api == direct.to_dict()

    def test_attention_adapter_matches_direct_config(self, tiny_model):
        hw = sda_hardware()
        lengths = [32, 256, 64, 128, 48, 512, 96, 64]
        for strategy in ("coarse", "interleave", "dynamic"):
            schedule = Schedule(name=strategy,
                                parallelization=parallelization(strategy, num_regions=4,
                                                                coarse_chunk=2))
            via_api = AttentionWorkload(model=tiny_model, batch=8,
                                        lengths=lengths).run(schedule, hw)
            config = AttentionConfig(model=tiny_model, batch=8, strategy=strategy,
                                     num_regions=4, kv_tile_rows=64, coarse_chunk=2)
            program = build_attention_layer(config)
            direct = simulate(program.program, program.inputs(lengths), hardware=hw)
            assert via_api == direct.to_dict()


class TestPlatformEquivalence:
    def test_default_platform_reproduces_explicit_hardware_exactly(self, tiny_model,
                                                                   routing):
        """The platform redesign's acceptance anchor: a scenario without an
        explicit platform (= the registered "sda" platform) produces the exact
        metrics of the pre-platform explicit sda_hardware() path."""
        from repro.api import Scenario

        workload = MoEWorkload(model=tiny_model, batch=8, assignments=routing)
        schedules = {"tile=4": Schedule.static("tile=4", 4),
                     "dynamic": Schedule.dynamic()}
        default_result = run(Scenario(name="default-platform", workloads=workload,
                                      schedules=schedules))
        explicit_result = run(Scenario(name="explicit-hw", workloads=workload,
                                       schedules=schedules, hardware=sda_hardware()))
        named_result = run(Scenario(name="named-platform", workloads=workload,
                                    schedules=schedules, platforms="sda"))
        assert [r.metrics for r in default_result.rows] == \
            [r.metrics for r in explicit_result.rows] == \
            [r.metrics for r in named_result.rows]
        assert all(r.platform == "sda" for r in default_result.rows)
        # and the workload-task metrics equal a direct builder simulation
        config = MoELayerConfig(model=tiny_model, batch=8, tile_rows=4)
        program = build_moe_layer(config)
        direct = simulate(program.program, program.inputs(routing),
                          hardware=sda_hardware())
        assert default_result[("moe:tiny-4e:b8", "tile=4")] == direct.to_dict()

    def test_all_three_spellings_share_cache_entries(self, tiny_model, routing,
                                                     tmp_path):
        """None / "sda" / sda_hardware() resolve to one cache identity."""
        from repro.api import ResultCache, Scenario

        workload = MoEWorkload(model=tiny_model, batch=8, assignments=routing)
        schedules = {"dynamic": Schedule.dynamic()}
        cache = ResultCache(tmp_path)
        cold = run(Scenario(name="a", workloads=workload, schedules=schedules),
                   cache=cache)
        assert cold.stats.simulated == 1
        for spelling in ({"platforms": "sda"}, {"hardware": sda_hardware()}):
            warm = run(Scenario(name="b", workloads=workload, schedules=schedules,
                                **spelling), cache=ResultCache(tmp_path))
            assert warm.stats.simulated == 0, spelling


class TestFigureEquivalence:
    def test_registered_figure9_scenario_reproduces_goldens_exactly(self):
        """The acceptance criterion: scenario metrics == pre-redesign goldens."""
        recorded = json.loads(GOLDENS_PATH.read_text())["figures"]["figure9"]
        scenario = get_scenario("figure9", scale=SMOKE_SCALE)
        result = run(scenario)
        fig9 = figure9_10.run(SMOKE_SCALE)
        for model_name, golden in recorded.items():
            dynamic = result[(model_name, "dynamic")]
            assert dynamic["cycles"] == golden["dynamic_cycles"]
            assert dynamic["offchip_traffic_bytes"] == \
                golden["dynamic_offchip_traffic_bytes"]
            assert dynamic["onchip_memory_bytes"] == golden["dynamic_onchip_memory_bytes"]
            # and the figure module (itself rewired through the API) agrees on
            # the derived Pareto summaries
            summary = fig9["per_model"][model_name]["summary"]
            assert summary["pid"] == golden["pid"]
            assert summary["speedup_at_matched_memory"] == \
                golden["speedup_at_matched_memory"]

    def test_scenario_and_figure_module_share_cache_entries(self, tmp_path):
        """The registered scenario and the figure module run identical points."""
        from repro.api import ResultCache
        cache = ResultCache(tmp_path)
        run(get_scenario("figure9", scale=SMOKE_SCALE), cache=cache)
        from repro.sweep import SweepRunner
        runner = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        figure9_10.run(SMOKE_SCALE, runner=runner)
        assert runner.last_stats.simulated == 0  # every point served from cache
