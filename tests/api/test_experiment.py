"""ExperimentSpec: payload kinds, the name registry, JSON round-trips, runs."""

import json

import pytest

import repro.api as api
from repro.api import (ExperimentSpec, ResultCache, experiment,
                       experiment_descriptions, experiment_names, run_experiment)
from repro.api.experiment import EXPERIMENTS, register_experiment
from repro.core.errors import ConfigError


class TestSpecRecord:
    def test_exactly_one_payload_required(self):
        with pytest.raises(ConfigError):
            ExperimentSpec(name="empty")
        with pytest.raises(ConfigError):
            ExperimentSpec(name="both", figure="1",
                           sweep=experiment("serve-latency", scale="smoke").sweep)
        with pytest.raises(ConfigError):
            ExperimentSpec(name="", figure="1")

    def test_kinds(self):
        assert experiment("serve-latency", scale="smoke").kind == "sweep"
        assert experiment("figure15", scale="smoke").kind == "scenario"
        assert experiment("figure8", scale="smoke").kind == "figure"


class TestResolution:
    def test_every_figure_resolves(self):
        """The acceptance criterion: every figure is addressable by name."""
        for number in ("1", "8", "9", "10", "12", "13", "14", "15", "17",
                       "19", "20", "21"):
            spec = experiment(f"figure{number}", scale="smoke")
            assert spec.kind in ("scenario", "figure")
            # the bare CLI id resolves to the same spec
            assert experiment(number, scale="smoke").to_dict() == spec.to_dict()

    def test_registered_scenarios_resolve(self):
        spec = experiment("serve-burst")
        assert spec.kind == "scenario"
        assert spec.scenario.name == "serve-burst"

    def test_bench_cases_resolve(self):
        spec = experiment("figure9-dynamic-tiling")
        assert spec.kind == "scenario"
        assert spec.description
        with pytest.raises(ConfigError):
            experiment("figure9-dynamic-tiling", batch=3)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            experiment("nonexistent-experiment")

    def test_names_and_descriptions_cover_all_sources(self):
        names = experiment_names()
        for expected in ("figure1", "figure15", "serve-latency", "serve-poisson",
                         "dense-ffn", "figure15-batch-sweep"):
            assert expected in names
        descriptions = experiment_descriptions()
        assert set(descriptions) >= set(EXPERIMENTS)
        assert descriptions["serve-latency"]

    def test_register_experiment_duplicate_rejected(self):
        @register_experiment("_test-exp", "test entry")
        def factory(**overrides):
            return experiment("dense-ffn")

        try:
            with pytest.raises(ConfigError):
                register_experiment("_test-exp")(factory)
            assert experiment("_test-exp").scenario.name == "dense-ffn"
        finally:
            del EXPERIMENTS["_test-exp"]


class TestSerialization:
    @pytest.mark.parametrize("name,kind", [("serve-latency", "sweep"),
                                           ("figure15", "scenario"),
                                           ("figure8", "figure")])
    def test_spec_json_round_trip(self, name, kind):
        spec = experiment(name, scale="smoke")
        payload = json.loads(json.dumps(spec.to_dict()))
        rebuilt = ExperimentSpec.from_dict(payload)
        assert rebuilt.kind == kind
        assert rebuilt.to_dict() == spec.to_dict()

    def test_round_tripped_scenario_spec_runs_identically(self):
        spec = experiment("dense-ffn")
        rebuilt = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        original = run_experiment(spec)
        again = run_experiment(rebuilt)
        assert again.rows == original.rows

    def test_round_tripped_sweep_spec_shares_cache_identity(self):
        spec = experiment("serve-latency", scale="smoke",
                          rates=(40.0,), num_requests=4)
        rebuilt = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        original_keys = [p.cache_key() for p in spec.sweep.points()]
        rebuilt_keys = [p.cache_key() for p in rebuilt.sweep.points()]
        assert rebuilt_keys == original_keys


class TestExecution:
    def test_sweep_experiment_runs_and_caches(self, tmp_path):
        spec = experiment("serve-latency", scale="smoke",
                          rates=(40.0, 160.0), num_requests=4)
        cold = run_experiment(spec, cache=ResultCache(tmp_path))
        assert len(cold.rows) == len(spec.sweep)
        assert all(row["ttft_p50"] > 0 for row in cold.rows)
        warm = run_experiment(spec, cache=ResultCache(tmp_path))
        assert warm.stats.simulated == 0
        assert warm.rows == cold.rows

    def test_scenario_experiment_carries_scenario_result(self):
        result = run_experiment("prefill-decode-mix", batch=8)
        assert result.spec.kind == "scenario"
        assert result.scenario is not None
        assert {row["schedule"] for row in result.rows} == \
            {"coarse", "interleave", "dynamic"}
        assert all(row["platform"] == "sda" for row in result.rows)

    def test_figure_experiment_dispatches_native_entry_point(self):
        result = run_experiment("figure1", scale="smoke")
        assert result.raw["gpu_max_fraction"] < 0.5
        assert len(result.rows) == 12

    def test_figure_experiment_accepts_scale_objects(self):
        """A figure spec built from an ExperimentScale object runs the same
        before and after a JSON round-trip (the stored params are JSON-plain
        and rebuilt on execution)."""
        from repro.experiments.common import SMOKE_SCALE

        spec = experiment("figure1", scale=SMOKE_SCALE)
        direct = run_experiment(spec)
        rebuilt = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert run_experiment(rebuilt).rows == direct.rows

    def test_run_accepts_experiment_spec(self):
        """repro.api.run executes specs uniformly with scenarios."""
        result = api.run(experiment("dense-ffn"))
        assert result.spec.name == "dense-ffn"
        assert len(result.rows) > 0

    def test_overrides_only_for_names(self):
        with pytest.raises(ConfigError):
            run_experiment(experiment("dense-ffn"), seed=3)
