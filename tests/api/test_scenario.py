"""Scenario records, the registry and the ``run`` entry point."""

from dataclasses import replace

import pytest

import repro.api as api
from repro.api import (MoEWorkload, ResultCache, Scenario, Schedule, SweepRunner,
                       get_scenario, register_scenario, run, scenario_names)
from repro.api.scenario import SCENARIOS
from repro.core.errors import ConfigError
from repro.data.expert_routing import generate_routing_trace, representative_iteration
from repro.workloads.configs import QWEN3_30B_A3B, scaled_config


@pytest.fixture(scope="module")
def tiny_scenario_factory():
    model = replace(scaled_config(QWEN3_30B_A3B, scale=32), name="tiny-4e",
                    num_experts=4, experts_per_token=2)
    trace = generate_routing_trace(model, batch_size=8, num_iterations=2, seed=0)
    assignments = [list(a) for a in representative_iteration(trace)]

    def factory(seed: int = 0) -> Scenario:
        return Scenario(
            name="tiny-tiling",
            workloads=MoEWorkload(model=model, batch=8, assignments=assignments),
            schedules={"tile=4": Schedule.static("tile=4", 4),
                       "dynamic": Schedule.dynamic()},
            seed=seed)

    return factory


class TestScenarioRecord:
    def test_single_workload_and_schedule_wrapped(self, tiny_scenario_factory):
        scenario = tiny_scenario_factory()
        assert list(scenario.workloads) == ["moe:tiny-4e:b8"]
        assert set(scenario.schedules) == {"tile=4", "dynamic"}
        assert len(scenario) == 2

    def test_grid_is_workload_major(self, tiny_scenario_factory):
        scenario = tiny_scenario_factory()
        assert scenario.grid() == [("moe:tiny-4e:b8", "tile=4", "sda"),
                                   ("moe:tiny-4e:b8", "dynamic", "sda")]

    def test_empty_scenario_rejected(self):
        with pytest.raises(ConfigError):
            Scenario(name="empty", workloads={}, schedules={})

    def test_sweep_spec_uses_generic_task(self, tiny_scenario_factory):
        spec = tiny_scenario_factory().sweep_spec()
        assert spec.task == "workload"
        assert spec.mode == "zip"
        assert len(spec) == 2


class TestRun:
    def test_run_collects_grid_in_order(self, tiny_scenario_factory):
        result = run(tiny_scenario_factory())
        assert [(r.workload, r.schedule, r.platform) for r in result.rows] == \
            result.scenario.grid()
        assert all(r["cycles"] > 0 for r in result.rows)

    def test_result_accessors(self, tiny_scenario_factory):
        result = run(tiny_scenario_factory())
        cell = result[("moe:tiny-4e:b8", "dynamic")]
        assert cell["cycles"] > 0
        assert result.for_workload("moe:tiny-4e:b8")["dynamic"] == cell
        assert result.for_schedule("dynamic")["moe:tiny-4e:b8"] == cell
        with pytest.raises(KeyError):
            result[("moe:tiny-4e:b8", "nonexistent")]
        flat = result.to_rows()
        assert flat[0]["workload"] == "moe:tiny-4e:b8" and "cycles" in flat[0]

    def test_warm_cache_rerun_skips_simulation(self, tiny_scenario_factory, tmp_path):
        cold = run(tiny_scenario_factory(), cache=ResultCache(tmp_path))
        assert cold.stats.simulated == len(cold.rows) > 0
        warm = run(tiny_scenario_factory(), cache=ResultCache(tmp_path))
        assert warm.stats.simulated == 0
        assert warm.stats.cache_hits == len(warm.rows)
        assert [r.metrics for r in warm.rows] == [r.metrics for r in cold.rows]
        assert all(r.cached for r in warm.rows)

    def test_explicit_runner_takes_precedence(self, tiny_scenario_factory, tmp_path):
        runner = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        run(tiny_scenario_factory(), runner=runner)
        assert runner.cumulative_stats.points > 0

    def test_overrides_only_for_registered_names(self, tiny_scenario_factory):
        with pytest.raises(ConfigError):
            run(tiny_scenario_factory(), seed=3)


class TestRegistry:
    def test_round_trip_register_lookup_run_cached_rerun(self, tiny_scenario_factory,
                                                         tmp_path):
        register_scenario("_test-tiny-tiling")(tiny_scenario_factory)
        try:
            assert "_test-tiny-tiling" in scenario_names()
            scenario = get_scenario("_test-tiny-tiling")
            assert scenario.name == "tiny-tiling"
            cold = run("_test-tiny-tiling", cache=ResultCache(tmp_path))
            warm = run("_test-tiny-tiling", cache=ResultCache(tmp_path))
            assert warm.stats.simulated == 0
            assert [r.metrics for r in warm.rows] == [r.metrics for r in cold.rows]
        finally:
            del SCENARIOS["_test-tiny-tiling"]

    def test_factory_overrides_forwarded(self, tiny_scenario_factory):
        register_scenario("_test-override")(tiny_scenario_factory)
        try:
            assert get_scenario("_test-override", seed=7).seed == 7
        finally:
            del SCENARIOS["_test-override"]

    def test_duplicate_registration_rejected(self, tiny_scenario_factory):
        register_scenario("_test-dup")(tiny_scenario_factory)
        try:
            with pytest.raises(ConfigError):
                register_scenario("_test-dup")(tiny_scenario_factory)
        finally:
            del SCENARIOS["_test-dup"]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError):
            get_scenario("nonexistent-scenario")


class TestPlatformAxis:
    def test_default_platform_is_sda(self, tiny_scenario_factory):
        scenario = tiny_scenario_factory()
        assert list(scenario.platforms) == ["sda"]
        # legacy read path: single-platform scenarios still expose .hardware
        from repro.workloads.configs import sda_hardware
        assert scenario.hardware == sda_hardware()

    def test_legacy_hardware_argument_folds_into_platforms(self, tiny_scenario_factory):
        from repro.api import get_platform
        from repro.workloads.configs import sda_hardware

        base = tiny_scenario_factory()
        legacy = Scenario(name="legacy", workloads=base.workloads,
                          schedules=base.schedules, hardware=sda_hardware())
        assert legacy.platforms == {"sda": get_platform("sda")}
        with pytest.raises(ConfigError):
            Scenario(name="both", workloads=base.workloads, schedules=base.schedules,
                     hardware=sda_hardware(), platforms="sda")

    def test_platforms_sweep_as_third_axis(self, tiny_scenario_factory, tmp_path):
        """The acceptance criterion: hardware sweeps through the pooled runner
        and cache — distinct cache keys per platform, full hits on rerun."""
        from repro.api import platform_grid

        base = tiny_scenario_factory()
        scenario = Scenario(name="hw-sweep", workloads=base.workloads,
                            schedules=base.schedules,
                            platforms=platform_grid(onchip_bandwidths=(64.0, 256.0)))
        assert len(scenario) == 1 * 2 * 2  # one workload, two schedules, two platforms
        keys = [p.cache_key() for p in scenario.sweep_spec().points()]
        assert len(set(keys)) == len(keys)  # platform identity is in every key

        cold = run(scenario, cache=ResultCache(tmp_path))
        assert cold.stats.simulated == len(cold.rows)
        assert [(r.workload, r.schedule, r.platform) for r in cold.rows] == \
            scenario.grid()
        # more on-chip bandwidth must not slow the memory-bound layer down
        for schedule in base.schedules:
            slow = cold[("moe:tiny-4e:b8", schedule, "sda")]
            fast = cold[("moe:tiny-4e:b8", schedule, "sda-onchip256")]
            assert fast["cycles"] <= slow["cycles"]

        warm = run(scenario, cache=ResultCache(tmp_path))
        assert warm.stats.simulated == 0
        assert warm.stats.cache_hits == len(warm.rows)
        assert [r.metrics for r in warm.rows] == [r.metrics for r in cold.rows]

    def test_equal_hardware_different_name_is_a_distinct_point(self,
                                                               tiny_scenario_factory):
        """Platform *identity* participates in the content hash."""
        from repro.api import Platform, get_platform

        base = tiny_scenario_factory()
        twin = Platform(name="sda-twin", hardware=get_platform("sda").hardware)
        scenario = Scenario(name="twins", workloads=base.workloads,
                            schedules={"dynamic": base.schedules["dynamic"]},
                            platforms={"sda": "sda", "sda-twin": twin})
        keys = [p.cache_key() for p in scenario.sweep_spec().points()]
        assert len(set(keys)) == 2

    def test_multi_platform_accessors(self, tiny_scenario_factory):
        from repro.api import platform_grid

        base = tiny_scenario_factory()
        scenario = Scenario(name="acc", workloads=base.workloads,
                            schedules={"dynamic": base.schedules["dynamic"]},
                            platforms=platform_grid(onchip_bandwidths=(64.0, 128.0)))
        assert scenario.hardware is None  # no single legacy hardware when swept
        result = run(scenario)
        with pytest.raises(KeyError):
            result[("moe:tiny-4e:b8", "dynamic")]  # ambiguous across platforms
        cell = result[("moe:tiny-4e:b8", "dynamic", "sda-onchip128")]
        assert cell["cycles"] > 0
        assert result.for_platform("sda")[("moe:tiny-4e:b8", "dynamic")]["cycles"] > 0
        assert len(result.select(platform="sda-onchip128")) == 1
        assert {row["platform"] for row in result.to_rows()} == \
            {"sda", "sda-onchip128"}
        # multi-platform for_workload keys carry the platform label
        assert set(result.for_workload("moe:tiny-4e:b8")) == \
            {("dynamic", "sda"), ("dynamic", "sda-onchip128")}

    def test_scenario_json_round_trip(self, tiny_scenario_factory):
        import json

        from repro.api import platform_grid

        base = tiny_scenario_factory()
        scenario = Scenario(name="rt", workloads=base.workloads,
                            schedules=base.schedules,
                            platforms=platform_grid(onchip_bandwidths=(64.0, 256.0)),
                            seed=5, description="round trip")
        payload = json.loads(json.dumps(scenario.to_dict()))
        rebuilt = Scenario.from_dict(payload)
        assert rebuilt.to_dict() == scenario.to_dict()
        assert rebuilt.grid() == scenario.grid()
        # the round-tripped scenario hashes (= caches) identically
        original_keys = [p.cache_key() for p in scenario.sweep_spec().points()]
        rebuilt_keys = [p.cache_key() for p in rebuilt.sweep_spec().points()]
        assert rebuilt_keys == original_keys


class TestBuiltInScenarios:
    def test_library_registered(self):
        names = scenario_names()
        for name in ("dense-ffn", "prefill-decode-mix", "figure9", "figure10"):
            assert name in names

    def test_dense_ffn_end_to_end_with_warm_rerun(self, tmp_path):
        # the brand-new scenario of this redesign: dense FFN had no home in
        # the per-figure structure; through the API it is three declarations
        cold = run("dense-ffn", cache=ResultCache(tmp_path))
        assert cold.stats.simulated == len(cold.rows) > 0
        dynamic = cold.for_schedule("dynamic")
        assert all(m["cycles"] > 0 for m in dynamic.values())
        warm = run("dense-ffn", cache=ResultCache(tmp_path))
        assert warm.stats.simulated == 0
        assert [r.metrics for r in warm.rows] == [r.metrics for r in cold.rows]

    def test_prefill_decode_mix_runs(self):
        result = run("prefill-decode-mix", batch=8)
        assert {r.schedule for r in result.rows} == {"coarse", "interleave", "dynamic"}
        assert all(r["cycles"] > 0 for r in result.rows)

    def test_figure_factory_seed_override_changes_routing(self):
        from repro.experiments.common import SMOKE_SCALE
        base = get_scenario("figure9", scale=SMOKE_SCALE)
        reseeded = get_scenario("figure9", scale=SMOKE_SCALE, seed=3)
        assert base.seed != reseeded.seed
        assert base.workloads != reseeded.workloads  # different routing traces


class TestFacade:
    def test_all_names_importable(self):
        for name in api.__all__:
            assert getattr(api, name) is not None
