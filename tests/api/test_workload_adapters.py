"""Workload adapters: protocol conformance, params round-trips, composition."""

from dataclasses import replace

import pytest

from repro.api import (AttentionWorkload, DecoderWorkload, DenseFFNWorkload,
                       MoEWorkload, QKVWorkload, Schedule, Workload,
                       register_workload, workload_from_params)
from repro.api.workload import WORKLOAD_KINDS, WorkloadBase
from repro.core.errors import ConfigError
from repro.data.expert_routing import generate_routing_trace, representative_iteration
from repro.workloads.configs import QWEN3_30B_A3B, scaled_config, sda_hardware


@pytest.fixture(scope="module")
def tiny_model():
    return replace(scaled_config(QWEN3_30B_A3B, scale=32), name="tiny-4e",
                   num_experts=4, experts_per_token=2)


@pytest.fixture(scope="module")
def routing(tiny_model):
    trace = generate_routing_trace(tiny_model, batch_size=8, num_iterations=2, seed=0)
    return [list(a) for a in representative_iteration(trace)]


def sample_workloads(model, routing):
    return [
        MoEWorkload(model=model, batch=8, assignments=routing),
        DenseFFNWorkload(model=model, batch=8),
        AttentionWorkload(model=model, batch=8, lengths=[64] * 8),
        QKVWorkload(model=model, batch=8),
        DecoderWorkload(model=model, batch=8, kv_lengths=[64] * 8,
                        assignments=routing, num_layers=2),
    ]


class TestProtocolAndRegistry:
    def test_all_adapters_satisfy_the_protocol(self, tiny_model, routing):
        for workload in sample_workloads(tiny_model, routing):
            assert isinstance(workload, Workload)
            assert workload.kind in WORKLOAD_KINDS

    def test_params_round_trip_reconstructs_equal_workload(self, tiny_model, routing):
        for workload in sample_workloads(tiny_model, routing):
            rebuilt = workload_from_params(workload.kind, workload.params())
            assert rebuilt == workload

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            workload_from_params("nonexistent", {})

    def test_duplicate_kind_rejected(self):
        class Clone(WorkloadBase):
            kind = "moe"

        with pytest.raises(ConfigError):
            register_workload(Clone)

    def test_kind_excluded_from_params(self, tiny_model):
        params = QKVWorkload(model=tiny_model, batch=8).params()
        assert "kind" not in params
        assert params["batch"] == 8


class TestAdapterRuns:
    def test_moe_static_vs_dynamic(self, tiny_model, routing):
        workload = MoEWorkload(model=tiny_model, batch=8, assignments=routing)
        hw = sda_hardware()
        static = workload.run(Schedule.static("tile=4", 4), hw)
        dynamic = workload.run(Schedule.dynamic(), hw)
        assert static["cycles"] > 0 and dynamic["cycles"] > 0
        # the Section 5.2 claim in miniature: dynamic tiling moves fewer bytes
        assert dynamic["offchip_traffic_bytes"] <= static["offchip_traffic_bytes"]

    def test_dense_ffn_dynamic_matches_best_static(self, tiny_model):
        # without routing imbalance the dynamic point should not *beat* the
        # best static tile (one batch-sized tile == tile_rows=batch)
        workload = DenseFFNWorkload(model=tiny_model, batch=8)
        hw = sda_hardware()
        dynamic = workload.run(Schedule.dynamic(), hw)
        best_static = workload.run(Schedule.static("tile=8", 8), hw)
        assert dynamic["cycles"] == pytest.approx(best_static["cycles"], rel=0.01)

    def test_qkv_runs_under_any_schedule(self, tiny_model):
        metrics = QKVWorkload(model=tiny_model, batch=8).run(
            Schedule.static("s", 4), sda_hardware())
        assert metrics["cycles"] > 0 and metrics["total_flops"] > 0

    def test_attention_truncates_long_traces(self, tiny_model):
        workload = AttentionWorkload(model=tiny_model, batch=4, lengths=[64] * 16)
        metrics = workload.run(Schedule.dynamic(), sda_hardware())
        assert metrics["cycles"] > 0

    def test_attention_rejects_short_traces(self, tiny_model):
        workload = AttentionWorkload(model=tiny_model, batch=8, lengths=[64, 64])
        with pytest.raises(ConfigError):
            workload.run(Schedule.dynamic(), sda_hardware())

    def test_decoder_is_composite(self, tiny_model, routing):
        workload = DecoderWorkload(model=tiny_model, batch=8, kv_lengths=[64] * 8,
                                   assignments=routing, num_layers=2)
        with pytest.raises(ConfigError):
            workload.build(Schedule.dynamic())
        metrics = workload.run(Schedule.dynamic(), sda_hardware())
        assert metrics["num_layers"] == 2.0
        sub_cycles = [metrics[f"layer_{sub}_cycles"]
                      for sub in ("qkv", "attention", "moe")]
        assert metrics["cycles"] == pytest.approx(sum(sub_cycles) * 2)

    def test_moe_timemux_requires_divisible_regions(self, tiny_model, routing):
        workload = MoEWorkload(model=tiny_model, batch=8, assignments=routing,
                               combine_output=False)
        schedule = Schedule.dynamic(num_experts=4, timemux_regions=2)
        metrics = workload.run(schedule, sda_hardware())
        assert metrics["cycles"] > 0
