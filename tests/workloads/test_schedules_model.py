"""Tests for the schedule descriptors and the end-to-end model composition."""

import pytest

from repro.core.errors import ConfigError
from repro.data.expert_routing import generate_routing_trace, representative_iteration
from repro.data.kv_traces import representative_trace
from repro.schedules import (Schedule,
    TilingSchedule,
    dynamic_tiling,
    parallelization,
    static_tiling,
    time_multiplexing)
from repro.schedules.parallelization import region_loads
from repro.workloads.configs import QWEN3_30B_A3B, scaled_config, sda_hardware
from repro.workloads.model import default_schedules, evaluate_end_to_end


class TestTilingSchedule:
    def test_static_and_dynamic(self):
        s = static_tiling(32)
        assert not s.is_dynamic and s.label() == "tile=32" and s.expressible_in_revet()
        d = dynamic_tiling()
        assert d.is_dynamic and not d.expressible_in_revet()

    def test_validation(self):
        with pytest.raises(ConfigError):
            TilingSchedule("static")
        with pytest.raises(ConfigError):
            TilingSchedule("dynamic", tile_rows=4)
        with pytest.raises(ConfigError):
            TilingSchedule("adaptive")


class TestTimeMultiplexSchedule:
    def test_properties(self):
        s = time_multiplexing(128, 4)
        assert s.experts_per_region == 32
        assert s.compute_saving == 32.0
        assert not s.is_fully_spatial
        assert time_multiplexing(8, 8).is_fully_spatial

    def test_validation(self):
        with pytest.raises(ConfigError):
            time_multiplexing(10, 3)


class TestParallelizationSchedule:
    def test_static_assignments(self):
        coarse = parallelization("coarse", num_regions=4, coarse_chunk=2)
        assert coarse.static_assignment(8) == [0, 0, 1, 1, 2, 2, 3, 3]
        interleave = parallelization("interleave", num_regions=4)
        assert interleave.static_assignment(6) == [0, 1, 2, 3, 0, 1]
        assert interleave.label() == "Static (Interleave)"

    def test_dynamic_has_no_static_assignment(self):
        with pytest.raises(ConfigError):
            parallelization("dynamic").static_assignment(4)

    def test_region_loads(self):
        loads = region_loads([0, 1, 0], [10, 5, 2], 2)
        assert loads == [12, 5]


class TestUnifiedSchedule:
    def test_composition_exposes_builder_knobs(self):
        schedule = Schedule(name="s", tiling=static_tiling(16),
                            timemux=time_multiplexing(128, 8),
                            parallelization=parallelization("dynamic"))
        assert schedule.moe_tile_rows == 16
        assert schedule.moe_num_regions == 8
        assert schedule.attention_strategy == "dynamic"
        assert not schedule.is_fully_dynamic  # tiling is static

    def test_dynamic_defaults(self):
        schedule = Schedule.dynamic()
        assert schedule.moe_tile_rows is None
        assert schedule.moe_num_regions is None
        assert schedule.is_fully_dynamic

    def test_fully_spatial_timemux_means_no_regions(self):
        schedule = Schedule(name="s", timemux=time_multiplexing(8, 8))
        assert schedule.moe_num_regions is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            Schedule(name="")
        with pytest.raises(ConfigError):
            Schedule(name="s", tiling="static")
        with pytest.raises(ConfigError):
            Schedule(name="s", timemux=16)
        with pytest.raises(ConfigError):
            Schedule.dynamic(timemux_regions=4)  # needs num_experts

    def test_dict_round_trip(self):
        for schedule in (Schedule.static("tile=8", 8, attention="coarse"),
                         Schedule.dynamic(num_experts=64, timemux_regions=8),
                         Schedule(name="plain")):
            assert Schedule.from_dict(schedule.to_dict()) == schedule

    def test_label_mentions_components(self):
        label = Schedule.dynamic(num_experts=64, timemux_regions=8).label()
        assert "dynamic" in label and "8 regions" in label


class TestEndToEndModel:
    def setup_method(self):
        from dataclasses import replace
        base = scaled_config(QWEN3_30B_A3B, scale=32)
        self.model = replace(base, num_experts=8, experts_per_token=2, name="tiny-qwen")
        self.batch = 8
        trace = generate_routing_trace(self.model, batch_size=self.batch, seed=0)
        self.assignments = representative_iteration(trace)
        self.kv_lengths = list(representative_trace(batch_size=self.batch,
                                                    num_requests=200, seed=0))

    def test_default_schedules_shape(self):
        schedules = default_schedules(self.model)
        assert set(schedules) == {"static_mem", "static_perf", "dynamic"}
        # small expert pools skip configuration time-multiplexing
        assert schedules["dynamic"].moe_num_regions is None

    def test_layer_breakdown_and_scaling(self):
        schedule = Schedule.dynamic()
        result = evaluate_end_to_end(self.model, schedule, self.batch, self.kv_lengths,
                                     self.assignments, num_layers=3,
                                     hardware=sda_hardware())
        assert set(result.breakdown.cycles) == {"qkv", "attention", "moe"}
        assert result.total_cycles == pytest.approx(result.breakdown.layer_cycles * 3)
        assert result.onchip_memory == result.breakdown.layer_memory
        assert result.total_traffic > 0

    def test_dynamic_vs_static_comparison(self):
        dynamic = Schedule.dynamic()
        static = Schedule.static("static", tile_rows=4)
        results = {}
        for schedule in (dynamic, static):
            results[schedule.name] = evaluate_end_to_end(
                self.model, schedule, self.batch, self.kv_lengths, self.assignments,
                num_layers=2, hardware=sda_hardware())
        assert results["dynamic"].breakdown.offchip_traffic["moe"] <= \
            results["static"].breakdown.offchip_traffic["moe"]

    def test_batch_mismatch_rejected(self):
        schedule = Schedule.static("static", tile_rows=4)
        with pytest.raises(ConfigError):
            evaluate_end_to_end(self.model, schedule, self.batch, self.kv_lengths[:-1],
                                self.assignments)
