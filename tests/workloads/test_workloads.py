"""Integration tests: the paper's workloads run end to end and match numpy."""

import numpy as np
import pytest

from repro.core.builder import tokens_to_matrix
from repro.data.expert_routing import generate_routing_trace, representative_iteration
from repro.sim import run_functional, simulate
from repro.workloads.attention import AttentionConfig, build_attention_layer
from repro.workloads.configs import MIXTRAL_8X7B, QWEN3_30B_A3B, ModelConfig, scaled_config
from repro.workloads.moe import (MoELayerConfig,
    build_moe_layer,
    static_tiling_config,
    time_multiplexed_config)
from repro.workloads.qkv import QKVConfig, build_qkv_layer
from repro.workloads.simple_moe import SimpleMoEConfig, build_simple_moe
from repro.workloads.swiglu import (SwiGLUConfig, SwiGLUTiling, build_swiglu_layer,
                                    random_swiglu_data, swiglu_reference)
from repro.core.errors import ConfigError


class TestSimpleMoE:
    """The Section 3.3 walk-through, checked against numpy."""

    @pytest.mark.parametrize("tile_rows", [4, 3, None])
    def test_matches_reference(self, rng, tile_rows):
        cfg = SimpleMoEConfig(num_rows=10, hidden_dim=64, out_dim=128, num_experts=2,
                              tile_rows=tile_rows, weight_tile_cols=64)
        built = build_simple_moe(cfg, seed=3)
        x = rng.standard_normal((10, 64)).astype(np.float32)
        routing = [0, 1, 0, 0, 1, 1, 0, 1, 0, 0]
        report = simulate(built.program, built.inputs(x, routing))
        out = tokens_to_matrix(report.output_tokens(built.output_name))
        assert np.allclose(out, built.reference(x, routing), atol=1e-3)

    def test_three_experts(self, rng):
        cfg = SimpleMoEConfig(num_rows=9, hidden_dim=32, out_dim=64, num_experts=3,
                              tile_rows=2, weight_tile_cols=32)
        built = build_simple_moe(cfg, seed=5)
        x = rng.standard_normal((9, 32)).astype(np.float32)
        routing = [0, 1, 2, 0, 1, 2, 2, 1, 0]
        report = run_functional(built.program, built.inputs(x, routing))
        out = tokens_to_matrix(report.output_tokens(built.output_name))
        assert np.allclose(out, built.reference(x, routing), atol=1e-3)

    def test_dynamic_tiling_loads_less(self, rng):
        x = rng.standard_normal((10, 64)).astype(np.float32)
        routing = [0] * 9 + [1]
        reports = {}
        for tile in (2, None):
            cfg = SimpleMoEConfig(num_rows=10, hidden_dim=64, out_dim=128,
                                  tile_rows=tile, weight_tile_cols=64)
            built = build_simple_moe(cfg, seed=0)
            reports[tile] = simulate(built.program, built.inputs(x, routing))
        assert reports[None].offchip_traffic < reports[2].offchip_traffic


class TestSwiGLULayer:
    def test_functional_against_numpy(self):
        cfg = SwiGLUConfig(batch=16, hidden=32, intermediate=64)
        weights, activations = random_swiglu_data(cfg, seed=2)
        tiling = SwiGLUTiling(8, 32, 32)
        program = build_swiglu_layer(cfg, tiling, weights=weights, activations=activations)
        report = run_functional(program)
        out = tokens_to_matrix(report.output_tokens("store_out"))
        assert np.allclose(out, swiglu_reference(activations, weights), atol=1e-2)

    def test_traffic_decreases_with_batch_tile(self):
        cfg = SwiGLUConfig()
        small = simulate(build_swiglu_layer(cfg, SwiGLUTiling(16, 256, 64)))
        large = simulate(build_swiglu_layer(cfg, SwiGLUTiling(64, 256, 64)))
        assert large.offchip_traffic < small.offchip_traffic
        assert large.cycles < small.cycles

    def test_invalid_tiling_rejected(self):
        cfg = SwiGLUConfig()
        with pytest.raises(ConfigError):
            build_swiglu_layer(cfg, SwiGLUTiling(48, 256, 64))
        with pytest.raises(ConfigError):
            build_swiglu_layer(cfg, SwiGLUTiling(16, 128, 64))


def tiny_moe_model(num_experts=4, top_k=2) -> ModelConfig:
    base = scaled_config(QWEN3_30B_A3B, scale=64)
    from dataclasses import replace
    return replace(base, num_experts=num_experts, experts_per_token=top_k,
                   name=f"tiny-{num_experts}e")


class TestMoELayer:
    def test_functional_against_numpy(self, rng):
        model = tiny_moe_model(num_experts=3, top_k=2)
        cfg = MoELayerConfig(model=model, batch=6, tile_rows=2, weight_col_tiles=2,
                             with_payload=True, collect_output=True)
        built = build_moe_layer(cfg)
        assignments = [(0, 1), (1, 2), (0, 2), (0, 1), (1, 2), (0, 2)]
        x = rng.standard_normal((6, model.hidden_dim)).astype(np.float32) * 0.1
        report = run_functional(built.program, built.inputs(assignments, activations=x))
        out = tokens_to_matrix(report.output_tokens(built.output_name))
        ref = built.reference(assignments, x)
        assert np.allclose(out, ref, rtol=1e-2, atol=1e-2)

    def test_dynamic_tiling_pareto_improvement(self):
        model = tiny_moe_model(num_experts=8, top_k=2)
        trace = generate_routing_trace(model, batch_size=32, seed=0)
        assignments = representative_iteration(trace)
        results = {}
        for tile in (4, 16, None):
            cfg = MoELayerConfig(model=model, batch=32, tile_rows=tile)
            built = build_moe_layer(cfg)
            results[tile] = simulate(built.program, built.inputs(assignments))
        # dynamic tiling: traffic no worse than the best static point, memory
        # below the largest static tile
        assert results[None].offchip_traffic <= results[4].offchip_traffic
        assert results[None].offchip_traffic <= results[16].offchip_traffic
        assert results[None].onchip_memory <= results[16].onchip_memory

    def test_time_multiplexing_reduces_allocated_compute(self):
        model = tiny_moe_model(num_experts=8, top_k=2)
        trace = generate_routing_trace(model, batch_size=16, seed=1)
        assignments = representative_iteration(trace)
        spatial = build_moe_layer(static_tiling_config(model, 16, 8, combine_output=False))
        muxed = build_moe_layer(time_multiplexed_config(model, 16, num_regions=2, tile_rows=8))
        spatial_report = simulate(spatial.program, spatial.inputs(assignments))
        muxed_report = simulate(muxed.program, muxed.inputs(assignments))
        assert muxed_report.allocated_compute < spatial_report.allocated_compute
        assert muxed_report.compute_utilization > spatial_report.compute_utilization

    def test_invalid_configs(self):
        model = tiny_moe_model()
        with pytest.raises(ConfigError):
            MoELayerConfig(model=model, batch=8, tile_rows=0)
        with pytest.raises(ConfigError):
            MoELayerConfig(model=model, batch=8, num_regions=3)
        with pytest.raises(ConfigError):
            MoELayerConfig(model=model, batch=8, num_regions=2, combine_output=True)


class TestAttention:
    def setup_method(self):
        self.model = scaled_config(QWEN3_30B_A3B, scale=32)

    @pytest.mark.parametrize("strategy", ["coarse", "interleave", "dynamic"])
    def test_strategies_run_and_produce_all_rows(self, strategy):
        cfg = AttentionConfig(model=self.model, batch=8, strategy=strategy,
                              num_regions=2, kv_tile_rows=64, coarse_chunk=4,
                              collect_output=True)
        built = build_attention_layer(cfg)
        lengths = [64, 640, 128, 320, 64, 1280, 192, 64]
        report = simulate(built.program, built.inputs(lengths))
        rows = [v for v in report.output_values(built.output_name)]
        assert len(rows) == 8
        assert report.cycles > 0

    def test_dynamic_beats_coarse_on_small_batch(self):
        lengths = [512] * 4
        cycles = {}
        for strategy in ("coarse", "dynamic"):
            cfg = AttentionConfig(model=self.model, batch=4, strategy=strategy,
                                  num_regions=4, kv_tile_rows=64, coarse_chunk=16)
            built = build_attention_layer(cfg)
            cycles[strategy] = simulate(built.program, built.inputs(lengths)).cycles
        # coarse-grained assignment puts all four requests in one region
        assert cycles["coarse"] > 1.5 * cycles["dynamic"]

    def test_traffic_scales_with_kv_length(self):
        cfg = AttentionConfig(model=self.model, batch=4, strategy="interleave",
                              num_regions=2, kv_tile_rows=64)
        built = build_attention_layer(cfg)
        short = simulate(built.program, built.inputs([64, 64, 64, 64]))
        built2 = build_attention_layer(cfg)
        long = simulate(built2.program, built2.inputs([1024, 1024, 1024, 1024]))
        assert long.offchip_traffic > 10 * short.offchip_traffic

    def test_invalid_strategy(self):
        with pytest.raises(ConfigError):
            AttentionConfig(model=self.model, batch=4, strategy="magic")


class TestQKV:
    def test_builds_and_runs(self):
        model = scaled_config(MIXTRAL_8X7B, scale=32)
        cfg = QKVConfig(model=model, batch=8, num_regions=2, weight_col_tiles=2)
        built = build_qkv_layer(cfg)
        report = simulate(built.program, built.inputs())
        assert report.offchip_traffic > 0
        assert report.cycles > 0
