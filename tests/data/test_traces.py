"""Tests for the synthetic trace generators (AzureLLMInference / HH-RLHF substitutes)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.expert_routing import (expert_bin_counts, generate_routing_trace,
                                       representative_iteration, tokens_per_expert)
from repro.data.kv_traces import (VarianceClass, generate_request_lengths, make_batch,
                                  make_batches_by_variance, representative_trace)
from repro.workloads.configs import MIXTRAL_8X7B, QWEN3_30B_A3B, scaled_config


class TestKVTraces:
    def test_population_bounds(self):
        lengths = generate_request_lengths(num_requests=1000, max_length=4096, min_length=16)
        assert lengths.min() >= 16 and lengths.max() <= 4096
        assert len(lengths) == 1000

    def test_deterministic_by_seed(self):
        a = generate_request_lengths(seed=7)
        b = generate_request_lengths(seed=7)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, generate_request_lengths(seed=8))

    def test_make_batch_wraps(self):
        batch = make_batch([1, 2, 3], batch_size=5, start=2)
        assert batch == [3, 1, 2, 3, 1]

    def test_variance_classes_ordered(self):
        batches = make_batches_by_variance(batch_size=32, num_requests=1000,
                                           samples_per_class=2, seed=0)
        low = np.mean([t.std for t in batches[VarianceClass.LOW]])
        med = np.mean([t.std for t in batches[VarianceClass.MEDIUM]])
        high = np.mean([t.std for t in batches[VarianceClass.HIGH]])
        assert low < med < high

    def test_trace_properties(self):
        trace = representative_trace(batch_size=16, variance=VarianceClass.MEDIUM,
                                     num_requests=500)
        assert trace.batch_size == 16
        assert trace.total_tokens == sum(trace)
        assert trace.mean > 0

    def test_invalid_population(self):
        with pytest.raises(ValueError):
            generate_request_lengths(num_requests=0)
        with pytest.raises(ValueError):
            make_batch([], 4)


class TestExpertRouting:
    def setup_method(self):
        self.model = scaled_config(QWEN3_30B_A3B, scale=32)

    def test_topk_unique_experts(self):
        trace = generate_routing_trace(self.model, batch_size=8, num_iterations=3, seed=0)
        assert trace.batch_size == 8 and trace.num_iterations == 3
        for iteration in trace.assignments:
            for token_experts in iteration:
                assert len(token_experts) == self.model.experts_per_token
                assert len(set(token_experts)) == len(token_experts)
                assert all(0 <= e < self.model.num_experts for e in token_experts)

    def test_bin_counts_sum_to_tokens_times_topk(self):
        trace = generate_routing_trace(self.model, batch_size=16, seed=1)
        counts = trace.bin_counts(0)
        assert counts.sum() == 16 * self.model.experts_per_token

    def test_skew_increases_concentration(self):
        flat = generate_routing_trace(self.model, batch_size=64, seed=0, skew=0.0)
        skewed = generate_routing_trace(self.model, batch_size=64, seed=0, skew=2.0)
        assert skewed.bin_count_std(0) > flat.bin_count_std(0)

    def test_representative_iteration_close_to_mean_std(self):
        trace = generate_routing_trace(self.model, batch_size=32, num_iterations=10, seed=0)
        chosen = representative_iteration(trace)
        stds = [trace.bin_count_std(i) for i in range(trace.num_iterations)]
        chosen_std = float(np.std(expert_bin_counts(chosen, self.model.num_experts)))
        assert abs(chosen_std - np.mean(stds)) <= max(stds) - min(stds) + 1e-9

    def test_mixtral_routing(self):
        mixtral = scaled_config(MIXTRAL_8X7B, scale=32)
        trace = generate_routing_trace(mixtral, batch_size=8, seed=0)
        assert sum(tokens_per_expert(trace.iteration(0), mixtral.num_experts)) == 16


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=5))
def test_routing_trace_batch_property(batch, seed):
    model = scaled_config(MIXTRAL_8X7B, scale=32)
    trace = generate_routing_trace(model, batch_size=batch, num_iterations=1, seed=seed)
    counts = trace.bin_counts(0)
    assert counts.sum() == batch * model.experts_per_token
    assert (counts >= 0).all()
