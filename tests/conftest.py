"""Shared fixtures for the test suite.

The execution helpers live in :mod:`repro.testing` so test modules can import
them absolutely (``from repro.testing import execute``) instead of relying on
relative imports into this conftest, which break under rootdir-based
collection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.testing import execute, execute_values


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def run_output():
    return execute


@pytest.fixture
def run_values():
    return execute_values
