"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.graph import InputStream, Program, StreamHandle
from repro.core.stream import Token, data_values
from repro.sim import run_functional, simulate


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


def execute(output: StreamHandle, inputs: dict, timed: bool = False):
    """Build a program around ``output`` and return its collected token list."""
    program = Program([output], name="test")
    runner = simulate if timed else run_functional
    report = runner(program, inputs)
    return report.output_tokens(output.name)


def execute_values(output: StreamHandle, inputs: dict, timed: bool = False):
    """Like :func:`execute` but returns only the data payloads."""
    return data_values(execute(output, inputs, timed=timed))


@pytest.fixture
def run_output():
    return execute


@pytest.fixture
def run_values():
    return execute_values
