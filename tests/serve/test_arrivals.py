"""Arrival-process tests: determinism, distribution shape, serialization."""

import math

import pytest

from repro.core.errors import ConfigError
from repro.serve import (ArrivalTrace, Request, burst_trace, load_trace,
                         poisson_trace, save_trace, trace_from_lists)


class TestPoissonTrace:
    def test_same_seed_reproduces_the_trace_exactly(self):
        a = poisson_trace(rate=100.0, num_requests=32, seed=5)
        b = poisson_trace(rate=100.0, num_requests=32, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = poisson_trace(rate=100.0, num_requests=32, seed=5)
        b = poisson_trace(rate=100.0, num_requests=32, seed=6)
        assert a != b

    def test_arrivals_sorted_and_first_at_zero(self):
        trace = poisson_trace(rate=50.0, num_requests=16, seed=0)
        arrivals = [r.arrival for r in trace]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0.0

    def test_rate_scales_interarrival_gaps(self):
        slow = poisson_trace(rate=10.0, num_requests=64, seed=1)
        fast = poisson_trace(rate=1000.0, num_requests=64, seed=1)
        assert slow.duration > fast.duration * 10

    def test_observed_rate_tracks_nominal_rate(self):
        trace = poisson_trace(rate=200.0, num_requests=500, seed=2)
        assert trace.mean_rate == pytest.approx(200.0, rel=0.25)

    def test_prompts_quantized_and_bounded(self):
        trace = poisson_trace(rate=100.0, num_requests=64, seed=3,
                              prompt_quantum=16, prompt_max=256)
        for request in trace:
            assert request.prompt_tokens % 16 == 0
            assert 16 <= request.prompt_tokens <= 256
            assert request.output_tokens >= 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            poisson_trace(rate=0.0, num_requests=4)
        with pytest.raises(ConfigError):
            poisson_trace(rate=10.0, num_requests=0)


class TestBurstTrace:
    def test_bursts_arrive_synchronized(self):
        trace = burst_trace(rate=100.0, num_requests=12, burst_size=4, seed=0)
        arrivals = [r.arrival for r in trace]
        # every burst shares one arrival instant
        assert len(set(arrivals)) <= (len(trace) + 3) // 4

    def test_marginal_rate_matches_poisson_counterpart(self):
        steady = poisson_trace(rate=100.0, num_requests=200, seed=4)
        bursty = burst_trace(rate=100.0, num_requests=200, burst_size=4, seed=4)
        assert bursty.mean_rate == pytest.approx(steady.mean_rate, rel=0.5)

    def test_deterministic(self):
        assert burst_trace(rate=50.0, num_requests=8, seed=9) == \
            burst_trace(rate=50.0, num_requests=8, seed=9)


class TestDegenerateTraceStatistics:
    """duration / mean_rate on traces without a measurable span.

    Pre-fix, every degenerate trace reported ``mean_rate == 0.0`` — a
    single burst of simultaneous requests (infinitely fast arrivals) was
    indistinguishable from an empty trace (no arrivals at all).
    """

    def test_empty_trace_has_zero_duration_and_rate(self):
        trace = trace_from_lists([], [], [], name="empty")
        assert trace.duration == 0.0
        assert trace.mean_rate == 0.0

    def test_single_request_has_zero_duration_and_rate(self):
        trace = trace_from_lists([5.0], [16], [2], name="solo")
        assert trace.duration == 0.0
        assert trace.mean_rate == 0.0

    def test_single_burst_has_zero_duration_but_infinite_rate(self):
        trace = trace_from_lists([100.0, 100.0, 100.0], [16, 16, 16],
                                 [2, 2, 2], name="one-burst")
        assert trace.duration == 0.0
        assert trace.mean_rate == math.inf

    def test_spread_trace_unaffected(self):
        trace = trace_from_lists([0.0, 1_000_000.0], [16, 16], [2, 2],
                                 name="spread")
        assert trace.duration == 1_000_000.0
        assert trace.mean_rate == pytest.approx(1.0)


class TestExplicitTraces:
    def test_trace_from_lists(self):
        trace = trace_from_lists([0.0, 10.0], [32, 16], [2, 4], name="tiny")
        assert len(trace) == 2
        assert trace.total_prompt_tokens == 48
        assert trace.total_output_tokens == 6

    def test_rejects_mismatched_lists(self):
        with pytest.raises(ConfigError, match="equal lengths"):
            trace_from_lists([0.0], [32, 16], [2, 4])

    def test_rejects_unsorted_arrivals(self):
        with pytest.raises(ConfigError, match="sorted by arrival"):
            trace_from_lists([10.0, 0.0], [32, 16], [2, 4])

    def test_rejects_degenerate_requests(self):
        with pytest.raises(ConfigError):
            Request(request_id=0, arrival=-1.0, prompt_tokens=16, output_tokens=1)
        with pytest.raises(ConfigError):
            Request(request_id=0, arrival=0.0, prompt_tokens=0, output_tokens=1)
        with pytest.raises(ConfigError):
            Request(request_id=0, arrival=0.0, prompt_tokens=16, output_tokens=0)


class TestSerialization:
    def test_dict_round_trip_is_exact(self):
        trace = poisson_trace(rate=80.0, num_requests=8, seed=11)
        assert ArrivalTrace.from_dict(trace.to_dict()) == trace

    def test_json_file_round_trip(self, tmp_path):
        trace = burst_trace(rate=40.0, num_requests=6, burst_size=3, seed=2)
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        assert load_trace(path) == trace
