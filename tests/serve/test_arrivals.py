"""Arrival-process tests: determinism, distribution shape, serialization."""

import math

import pytest

from repro.core.errors import ConfigError
from repro.serve import (ArrivalTrace, Request, burst_trace, iter_trace_jsonl,
                         load_trace, load_trace_jsonl, poisson_trace,
                         save_trace, save_trace_jsonl, trace_from_lists)
from repro.serve.arrivals import quantize_up


class TestPoissonTrace:
    def test_same_seed_reproduces_the_trace_exactly(self):
        a = poisson_trace(rate=100.0, num_requests=32, seed=5)
        b = poisson_trace(rate=100.0, num_requests=32, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = poisson_trace(rate=100.0, num_requests=32, seed=5)
        b = poisson_trace(rate=100.0, num_requests=32, seed=6)
        assert a != b

    def test_arrivals_sorted_and_first_at_zero(self):
        trace = poisson_trace(rate=50.0, num_requests=16, seed=0)
        arrivals = [r.arrival for r in trace]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0.0

    def test_rate_scales_interarrival_gaps(self):
        slow = poisson_trace(rate=10.0, num_requests=64, seed=1)
        fast = poisson_trace(rate=1000.0, num_requests=64, seed=1)
        assert slow.duration > fast.duration * 10

    def test_observed_rate_tracks_nominal_rate(self):
        trace = poisson_trace(rate=200.0, num_requests=500, seed=2)
        assert trace.mean_rate == pytest.approx(200.0, rel=0.25)

    def test_prompts_quantized_and_bounded(self):
        trace = poisson_trace(rate=100.0, num_requests=64, seed=3,
                              prompt_quantum=16, prompt_max=256)
        for request in trace:
            assert request.prompt_tokens % 16 == 0
            assert 16 <= request.prompt_tokens <= 256
            assert request.output_tokens >= 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            poisson_trace(rate=0.0, num_requests=4)
        with pytest.raises(ConfigError):
            poisson_trace(rate=10.0, num_requests=0)


class TestBurstTrace:
    def test_bursts_arrive_synchronized(self):
        trace = burst_trace(rate=100.0, num_requests=12, burst_size=4, seed=0)
        arrivals = [r.arrival for r in trace]
        # every burst shares one arrival instant
        assert len(set(arrivals)) <= (len(trace) + 3) // 4

    def test_marginal_rate_matches_poisson_counterpart(self):
        steady = poisson_trace(rate=100.0, num_requests=200, seed=4)
        bursty = burst_trace(rate=100.0, num_requests=200, burst_size=4, seed=4)
        assert bursty.mean_rate == pytest.approx(steady.mean_rate, rel=0.5)

    def test_deterministic(self):
        assert burst_trace(rate=50.0, num_requests=8, seed=9) == \
            burst_trace(rate=50.0, num_requests=8, seed=9)

    def test_stops_at_num_requests(self):
        # pre-fix, the generation loop's break only left the inner per-burst
        # loop, so the outer loop kept drawing lengths for every remaining
        # anchor; the trace must hold exactly num_requests requests with
        # contiguous ids
        for n in (1, 5, 10, 11):
            trace = burst_trace(rate=100.0, num_requests=n, burst_size=4, seed=0)
            assert len(trace) == n
            assert [r.request_id for r in trace] == list(range(n))


class TestBurstTraceGoldens:
    """Pinned pre-vectorization outputs: the one-shot draw must stay
    bit-identical to the former per-request size-1 draws."""

    def _columns(self, trace):
        return ([r.arrival for r in trace],
                [r.prompt_tokens for r in trace],
                [r.output_tokens for r in trace])

    def test_golden_rate100_n10_burst4_seed0(self):
        trace = burst_trace(rate=100.0, num_requests=10, burst_size=4, seed=0)
        arrivals, prompts, outputs = self._columns(trace)
        assert trace.name == "burst4-r100-n10-s0"
        assert arrivals == [0.0] * 4 + [40783.884] * 4 + [41576.151] * 2
        assert prompts == [112, 112, 144, 80, 112, 96, 64, 80, 96, 64]
        assert outputs == [10, 4, 9, 9, 8, 9, 7, 9, 7, 7]

    def test_golden_rate50_n7_burst3_seed9(self):
        trace = burst_trace(rate=50.0, num_requests=7, burst_size=3, seed=9)
        arrivals, prompts, outputs = self._columns(trace)
        assert trace.name == "burst3-r50-n7-s9"
        assert arrivals == [0.0] * 3 + [29615.747] * 3 + [86073.326]
        assert prompts == [64, 64, 80, 144, 112, 64, 80]
        assert outputs == [6, 8, 8, 10, 6, 5, 7]

    def test_golden_with_length_kwargs(self):
        trace = burst_trace(rate=200.0, num_requests=5, burst_size=2, seed=3,
                            prompt_mean=48.0, output_mean=6.0)
        arrivals, prompts, outputs = self._columns(trace)
        assert trace.name == "burst2-r200-n5-s3"
        assert arrivals == [0.0, 0.0, 3896.569, 3896.569, 17891.978]
        assert prompts == [32, 112, 32, 32, 32]
        assert outputs == [5, 7, 6, 6, 6]


class TestDegenerateTraceStatistics:
    """duration / mean_rate on traces without a measurable span.

    Pre-fix, every degenerate trace reported ``mean_rate == 0.0`` — a
    single burst of simultaneous requests (infinitely fast arrivals) was
    indistinguishable from an empty trace (no arrivals at all).
    """

    def test_empty_trace_has_zero_duration_and_rate(self):
        trace = trace_from_lists([], [], [], name="empty")
        assert trace.duration == 0.0
        assert trace.mean_rate == 0.0

    def test_single_request_has_zero_duration_and_rate(self):
        trace = trace_from_lists([5.0], [16], [2], name="solo")
        assert trace.duration == 0.0
        assert trace.mean_rate == 0.0

    def test_single_burst_has_zero_duration_but_infinite_rate(self):
        trace = trace_from_lists([100.0, 100.0, 100.0], [16, 16, 16],
                                 [2, 2, 2], name="one-burst")
        assert trace.duration == 0.0
        assert trace.mean_rate == math.inf

    def test_spread_trace_unaffected(self):
        trace = trace_from_lists([0.0, 1_000_000.0], [16, 16], [2, 2],
                                 name="spread")
        assert trace.duration == 1_000_000.0
        assert trace.mean_rate == pytest.approx(1.0)


class TestExplicitTraces:
    def test_trace_from_lists(self):
        trace = trace_from_lists([0.0, 10.0], [32, 16], [2, 4], name="tiny")
        assert len(trace) == 2
        assert trace.total_prompt_tokens == 48
        assert trace.total_output_tokens == 6

    def test_rejects_mismatched_lists(self):
        with pytest.raises(ConfigError, match="equal lengths"):
            trace_from_lists([0.0], [32, 16], [2, 4])

    def test_rejects_unsorted_arrivals(self):
        with pytest.raises(ConfigError, match="sorted by arrival"):
            trace_from_lists([10.0, 0.0], [32, 16], [2, 4])

    def test_rejects_degenerate_requests(self):
        with pytest.raises(ConfigError):
            Request(request_id=0, arrival=-1.0, prompt_tokens=16, output_tokens=1)
        with pytest.raises(ConfigError):
            Request(request_id=0, arrival=0.0, prompt_tokens=0, output_tokens=1)
        with pytest.raises(ConfigError):
            Request(request_id=0, arrival=0.0, prompt_tokens=16, output_tokens=0)


class TestQuantizeUp:
    def test_exact_multiples_are_fixed_points(self):
        for value in (16, 32, 64, 256):
            assert quantize_up(value, 16) == value

    def test_rounds_up_not_to_nearest(self):
        assert quantize_up(17, 16) == 32
        assert quantize_up(31, 16) == 32
        assert quantize_up(33, 16) == 48

    def test_floor_is_one_quantum(self):
        # values at or below zero still produce a schedulable length
        assert quantize_up(0, 16) == 16
        assert quantize_up(1, 16) == 16
        assert quantize_up(-5, 16) == 16

    def test_quantum_one_is_identity_above_floor(self):
        assert quantize_up(7, 1) == 7
        assert quantize_up(0, 1) == 1


class TestPoissonRounding:
    def test_arrivals_carry_at_most_three_decimals(self):
        trace = poisson_trace(rate=333.0, num_requests=128, seed=7)
        for request in trace:
            assert request.arrival == round(request.arrival, 3)

    def test_rounding_preserves_sort_order(self):
        # two gaps rounding to the same millicycle must not invert order
        trace = poisson_trace(rate=5000.0, num_requests=256, seed=13)
        arrivals = [r.arrival for r in trace]
        assert arrivals == sorted(arrivals)


class TestSerialization:
    def test_dict_round_trip_is_exact(self):
        trace = poisson_trace(rate=80.0, num_requests=8, seed=11)
        assert ArrivalTrace.from_dict(trace.to_dict()) == trace

    def test_json_file_round_trip(self, tmp_path):
        trace = burst_trace(rate=40.0, num_requests=6, burst_size=3, seed=2)
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        assert load_trace(path) == trace


class TestJsonlTraces:
    def _priority_trace(self):
        return trace_from_lists([0.0, 5.0, 9.0], [32, 16, 64], [2, 4, 1],
                                priorities=[2, 0, 1], name="prio")

    def test_file_round_trip_is_exact(self, tmp_path):
        trace = poisson_trace(rate=80.0, num_requests=12, seed=11)
        path = tmp_path / "trace.jsonl"
        save_trace_jsonl(trace, path)
        assert load_trace_jsonl(path) == trace

    def test_round_trip_preserves_priorities(self, tmp_path):
        trace = self._priority_trace()
        path = tmp_path / "prio.jsonl"
        save_trace_jsonl(trace, path)
        loaded = load_trace_jsonl(path)
        assert loaded == trace
        assert [r.priority for r in loaded] == [2, 0, 1]

    def test_iteration_is_lazy_and_ordered(self, tmp_path):
        trace = poisson_trace(rate=80.0, num_requests=6, seed=3)
        path = tmp_path / "trace.jsonl"
        save_trace_jsonl(trace, path)
        stream = iter_trace_jsonl(path)
        first = next(stream)  # generator: no full-file materialization
        assert first == trace.requests[0]
        assert tuple(stream) == trace.requests[1:]

    def test_truncated_file_is_rejected(self, tmp_path):
        trace = poisson_trace(rate=80.0, num_requests=5, seed=3)
        path = tmp_path / "trace.jsonl"
        save_trace_jsonl(trace, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ConfigError, match="truncated"):
            load_trace_jsonl(path)

    def test_wrong_header_is_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "not-a-trace", "version": 1}\n')
        with pytest.raises(ConfigError):
            load_trace_jsonl(path)

    def test_future_version_is_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"format": "repro-trace", "version": 99, '
                        '"name": "x", "num_requests": 0}\n')
        with pytest.raises(ConfigError):
            load_trace_jsonl(path)
