"""Fleet-scale serving: dispatch, routing, warm-up, autoscaling, determinism."""

from dataclasses import replace

import pytest

from repro.core.errors import ConfigError
from repro.schedules import Schedule
from repro.serve import (AutoscalerConfig, FleetConfig, FleetReport,
                         FleetWorkload, ServeConfig, burst_trace,
                         fleet_latency_spec, get_routing_policy, poisson_trace,
                         routing_policy_names, simulate_fleet,
                         simulate_serving, trace_from_lists)
from repro.serve.arrivals import ArrivalTrace
from repro.sweep import SweepRunner, canonicalize
from repro.workloads.configs import QWEN3_30B_A3B, scaled_config


@pytest.fixture(scope="module")
def model():
    return replace(scaled_config(QWEN3_30B_A3B, scale=64), name="fleet-2e",
                   num_experts=2, experts_per_token=1)


def serve_config(model, **overrides):
    defaults = dict(batch_cap=2, num_layers=1, kv_tile_rows=64, seed=3)
    defaults.update(overrides)
    return ServeConfig(model=model, **defaults)


@pytest.fixture(scope="module")
def busy_trace():
    """Requests arriving faster than a single cap-2 replica drains them."""
    return trace_from_lists(
        arrivals=[0.0, 0.0, 0.0, 500.0, 500.0, 1000.0, 1500.0, 1500.0],
        prompt_tokens=[32, 16, 16, 32, 16, 16, 32, 16],
        output_tokens=[3, 2, 2, 3, 1, 2, 2, 2],
        name="fleet-busy")


class TestSingleReplicaEquivalence:
    def test_fleet_of_one_matches_simulate_serving_bitwise(self, model, busy_trace):
        """The acceptance criterion: one replica, zero warm-up == the single
        engine, bit for bit (same requests, steps and every latency)."""
        config = serve_config(model)
        single = simulate_serving(config, busy_trace, Schedule.dynamic())
        fleet = simulate_fleet(FleetConfig(serve=config, num_replicas=1),
                               busy_trace, Schedule.dynamic())
        assert fleet.num_replicas == 1
        assert fleet.replicas[0].serving.to_dict() == single.to_dict()
        assert fleet.total_cycles == single.total_cycles
        assert fleet.ttft() == single.ttft()
        assert fleet.e2e() == single.e2e()

    def test_fleet_of_one_poisson_matches_too(self, model):
        trace = poisson_trace(rate=300.0, num_requests=10, seed=7,
                              prompt_mean=24.0, prompt_max=64,
                              output_mean=3.0, output_max=8)
        config = serve_config(model)
        single = simulate_serving(config, trace, Schedule.dynamic())
        fleet = simulate_fleet(FleetConfig(serve=config, num_replicas=1),
                               trace, Schedule.dynamic())
        assert fleet.replicas[0].serving.to_dict() == single.to_dict()


class TestDispatch:
    def test_every_request_served_exactly_once(self, model, busy_trace):
        for routing in routing_policy_names():
            fleet = simulate_fleet(
                FleetConfig(serve=serve_config(model), num_replicas=2,
                            routing=routing),
                busy_trace, Schedule.dynamic())
            ids = sorted(r.request_id for r in fleet.requests)
            assert ids == list(range(len(busy_trace))), routing

    def test_round_robin_alternates_replicas(self, model, busy_trace):
        fleet = simulate_fleet(
            FleetConfig(serve=serve_config(model), num_replicas=2,
                        routing="round-robin"),
            busy_trace, Schedule.dynamic())
        counts = [rep.serving.num_requests for rep in fleet.replicas]
        assert counts == [4, 4]

    def test_replication_relieves_the_queue(self, model, busy_trace):
        config = serve_config(model)
        one = simulate_fleet(FleetConfig(serve=config, num_replicas=1),
                             busy_trace, Schedule.dynamic())
        four = simulate_fleet(FleetConfig(serve=config, num_replicas=4,
                                          routing="least-loaded"),
                              busy_trace, Schedule.dynamic())
        assert four.ttft()["p95"] < one.ttft()["p95"]

    def test_least_loaded_balances_better_than_round_robin(self, model):
        # uneven work (one huge prompt early) skews round-robin's blind
        # alternation; the load-aware policies route around the hot replica
        trace = trace_from_lists(
            arrivals=[0.0, 100.0, 200.0, 300.0, 400.0, 500.0],
            prompt_tokens=[128, 16, 16, 16, 16, 16],
            output_tokens=[6, 2, 2, 2, 2, 2],
            name="skewed")
        config = serve_config(model)
        reports = {
            routing: simulate_fleet(
                FleetConfig(serve=config, num_replicas=2, routing=routing),
                trace, Schedule.dynamic())
            for routing in ("round-robin", "least-loaded")}
        assert (reports["least-loaded"].imbalance
                <= reports["round-robin"].imbalance)

    def test_unknown_routing_rejected(self, model):
        with pytest.raises(ConfigError, match="unknown routing policy"):
            FleetConfig(serve=serve_config(model), routing="random")
        with pytest.raises(ConfigError, match="unknown routing policy"):
            get_routing_policy("nope")


class TestWarmup:
    def test_warmup_delays_the_first_step(self, model, busy_trace):
        config = serve_config(model)
        cold = simulate_fleet(
            FleetConfig(serve=config, num_replicas=1, warmup_cycles=10_000.0),
            busy_trace, Schedule.dynamic())
        warm = simulate_fleet(FleetConfig(serve=config, num_replicas=1),
                              busy_trace, Schedule.dynamic())
        cold_first = cold.replicas[0].serving.steps[0]
        warm_first = warm.replicas[0].serving.steps[0]
        assert cold_first.start == warm_first.start + 10_000.0
        assert cold.ttft()["p50"] > warm.ttft()["p50"]

    def test_warmup_charged_once_per_replica(self, model, busy_trace):
        fleet = simulate_fleet(
            FleetConfig(serve=serve_config(model), num_replicas=2,
                        warmup_cycles=5_000.0),
            busy_trace, Schedule.dynamic())
        for rep in fleet.replicas:
            steps = rep.serving.steps
            assert steps[0].start >= 5_000.0
            # later steps are contiguous: the penalty never recurs
            for prev, cur in zip(steps, steps[1:]):
                assert cur.start >= prev.start + prev.cycles - 1e-9

    def test_negative_warmup_rejected(self, model):
        with pytest.raises(ConfigError, match="warmup_cycles"):
            FleetConfig(serve=serve_config(model), warmup_cycles=-1.0)


class TestAutoscaler:
    def autoscaled(self, model, **overrides):
        defaults = dict(min_replicas=1, max_replicas=3, scale_up_depth=2.0,
                        scale_down_depth=0.25, smoothing=1.0,
                        cooldown_cycles=0.0)
        defaults.update(overrides)
        trace = burst_trace(rate=800.0, num_requests=16, burst_size=4, seed=5,
                            prompt_mean=24.0, prompt_max=64,
                            output_mean=3.0, output_max=8)
        return simulate_fleet(
            FleetConfig(serve=serve_config(model), num_replicas=1,
                        routing="least-loaded",
                        autoscaler=AutoscalerConfig(**defaults)),
            trace, Schedule.dynamic())

    def test_burst_load_scales_the_fleet_up(self, model):
        fleet = self.autoscaled(model)
        ups = [e for e in fleet.scaling_events if e.action == "scale-up"]
        assert ups
        assert fleet.num_replicas > fleet.initial_replicas
        assert fleet.metrics()["scale_ups"] == len(ups)

    def test_max_replicas_caps_the_active_fleet(self, model):
        # num_replicas counts every replica ever spawned (retired included);
        # the cap bounds how many are *active* at once, visible in the
        # after-event counts and the final fleet size
        fleet = self.autoscaled(model, max_replicas=2)
        assert fleet.final_replicas <= 2
        for event in fleet.scaling_events:
            assert 1 <= event.num_replicas <= 2

    def test_cooldown_throttles_scaling(self, model):
        eager = self.autoscaled(model, cooldown_cycles=0.0)
        throttled = self.autoscaled(model, cooldown_cycles=10**9)
        assert len(throttled.scaling_events) <= 1 < len(eager.scaling_events)

    def test_retired_replicas_drain_their_queue(self, model):
        fleet = self.autoscaled(model)
        ids = sorted(r.request_id for r in fleet.requests)
        assert ids == list(range(16))
        for rep in fleet.replicas:
            if rep.retired_at is not None:
                assert rep.retired_at >= rep.spawned_at

    def test_invalid_autoscaler_configs_rejected(self):
        with pytest.raises(ConfigError, match="max_replicas"):
            AutoscalerConfig(min_replicas=4, max_replicas=2)
        with pytest.raises(ConfigError, match="smoothing"):
            AutoscalerConfig(smoothing=0.0)
        with pytest.raises(ConfigError, match="scale_down_depth"):
            AutoscalerConfig(scale_up_depth=1.0, scale_down_depth=2.0)


class TestDeterminism:
    def test_fleet_report_is_bit_identical_across_runs(self, model, busy_trace):
        config = FleetConfig(serve=serve_config(model), num_replicas=3,
                             routing="least-kv", warmup_cycles=2_500.0,
                             autoscaler=AutoscalerConfig(
                                 max_replicas=4, scale_up_depth=2.0,
                                 cooldown_cycles=1_000.0))
        first = simulate_fleet(config, busy_trace, Schedule.dynamic())
        second = simulate_fleet(config, busy_trace, Schedule.dynamic())
        assert first.to_dict() == second.to_dict()

    def test_pooled_sweep_matches_in_process_run(self, model):
        """The fleet task is deterministic under the multiprocessing runner."""
        spec = fleet_latency_spec(
            model, Schedule.dynamic(), rates=(200.0, 800.0),
            num_replicas=(1, 2), routings=("round-robin",),
            batch_cap=2, num_requests=6, num_layers=1, seed=3,
            prompt_mean=24.0, prompt_max=64, output_mean=3.0, output_max=8)
        pooled = SweepRunner(jobs=2).metrics(spec)
        local = SweepRunner(jobs=1).metrics(spec)
        assert pooled == local
        assert len(pooled) == 4

    def test_empty_trace_yields_empty_report(self, model):
        empty = ArrivalTrace(name="empty", requests=())
        fleet = simulate_fleet(
            FleetConfig(serve=serve_config(model), num_replicas=2),
            empty, Schedule.dynamic())
        assert fleet.num_requests == 0
        assert fleet.total_cycles == 0.0
        assert fleet.goodput == 0.0
        assert fleet.imbalance == 0.0
        assert fleet.to_dict() == FleetReport.from_dict(fleet.to_dict()).to_dict()


class TestFleetReportRoundTrip:
    def test_to_dict_from_dict_round_trips(self, model, busy_trace):
        fleet = simulate_fleet(
            FleetConfig(serve=serve_config(model), num_replicas=2,
                        routing="least-loaded", warmup_cycles=1_000.0,
                        autoscaler=AutoscalerConfig(scale_up_depth=2.0,
                                                    cooldown_cycles=0.0)),
            busy_trace, Schedule.dynamic())
        restored = FleetReport.from_dict(fleet.to_dict())
        assert restored.to_dict() == fleet.to_dict()
        assert restored.metrics() == fleet.metrics()


class TestFleetWorkload:
    def workload(self, model, **overrides):
        trace = poisson_trace(rate=400.0, num_requests=6, seed=3,
                              prompt_mean=24.0, prompt_max=64,
                              output_mean=3.0, output_max=8)
        defaults = dict(model=model, trace=trace, num_replicas=2,
                        batch_cap=2, num_layers=1, seed=3)
        defaults.update(overrides)
        return FleetWorkload(**defaults)

    def test_run_reports_fleet_metrics(self, model):
        metrics = self.workload(model).run(Schedule.dynamic())
        assert metrics["replicas_total"] == 2.0
        assert metrics["requests"] == 6.0
        assert metrics["ttft_p95"] > 0
        assert metrics["util_mean"] > 0

    def test_build_is_rejected(self, model):
        with pytest.raises(ConfigError, match="run\\(\\)"):
            self.workload(model).build(Schedule.dynamic())

    def test_workload_is_canonicalizable_and_labelled(self, model):
        workload = self.workload(model, routing="least-kv",
                                 autoscaler=AutoscalerConfig())
        assert canonicalize(workload.params()) == canonicalize(workload.params())
        assert workload.label().startswith("fleet:")
        assert ":r2:least-kv" in workload.label()


class TestFleetSpec:
    def test_empty_rates_rejected(self, model):
        with pytest.raises(ConfigError, match="arrival rate"):
            fleet_latency_spec(model, Schedule.dynamic(), rates=())

    def test_grid_is_replica_major(self, model):
        spec = fleet_latency_spec(model, Schedule.dynamic(),
                                  rates=(100.0, 200.0), num_replicas=(1, 2),
                                  routings=("round-robin", "least-kv"))
        points = [p.kwargs() for p in spec.points()]
        assert len(points) == 8
        assert [p["num_replicas"] for p in points] == [1] * 4 + [2] * 4
        assert [p["routing"] for p in points[:4]] == \
            ["round-robin", "round-robin", "least-kv", "least-kv"]
        assert [p["arrival_rate"] for p in points[:2]] == [100.0, 200.0]


class TestKVRouting:
    """least-kv semantics (quantized, hash-seed-stable ties) and most-free-kv."""

    def engines(self, model, n=3, hardware=None):
        from repro.serve.scheduler import ReplicaEngine

        return [ReplicaEngine(serve_config(model), Schedule.dynamic(),
                              hardware, replica_id=i) for i in range(n)]

    def test_least_kv_ties_break_on_lowest_replica_id(self, model):
        policy = get_routing_policy("least-kv")
        replicas = self.engines(model)
        request = trace_from_lists([0.0], [16], [2], name="t").requests[0]
        # all idle: equal (zero) kv_load, lowest id must win regardless of
        # the order the dispatcher happens to hold its replicas in
        assert policy.choose(replicas, request).replica_id == 0
        assert policy.choose(list(reversed(replicas)), request).replica_id == 0

    def test_least_kv_compares_quantized_footprints(self, model):
        # kv_tile_rows=64: a 16-token and a 40-token context both quantize to
        # one tile, so the two replicas tie and id breaks it; a 65-token
        # context is two tiles and loses
        policy = get_routing_policy("least-kv")
        replicas = self.engines(model)
        short = trace_from_lists([0.0], [40], [2], name="s").requests[0]
        tiny = trace_from_lists([0.0], [16], [2], name="y").requests[0]
        long = trace_from_lists([0.0], [65], [2], name="l").requests[0]
        replicas[0].submit(long)
        replicas[1].submit(short)
        replicas[2].submit(tiny)
        assert replicas[0].kv_load == 128
        assert replicas[1].kv_load == replicas[2].kv_load == 64
        request = trace_from_lists([0.0], [16], [2], name="t").requests[0]
        assert policy.choose(replicas, request).replica_id == 1

    def test_least_kv_dispatch_stable_across_hash_seeds(self, model):
        """The whole fleet report is identical under different
        PYTHONHASHSEED values — no routing decision leans on hash order."""
        import json
        import os
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        script = (
            "import json\n"
            "from dataclasses import replace\n"
            "from repro.schedules import Schedule\n"
            "from repro.serve import FleetConfig, ServeConfig, poisson_trace, "
            "simulate_fleet\n"
            "from repro.workloads.configs import QWEN3_30B_A3B, scaled_config\n"
            "model = replace(scaled_config(QWEN3_30B_A3B, scale=64),\n"
            "                name='fleet-2e', num_experts=2, experts_per_token=1)\n"
            "trace = poisson_trace(rate=500.0, num_requests=8, seed=3,\n"
            "                      prompt_mean=24.0, prompt_max=64,\n"
            "                      output_mean=3.0, output_max=8)\n"
            "config = FleetConfig(serve=ServeConfig(model=model, batch_cap=2,\n"
            "                                       num_layers=1, seed=3),\n"
            "                     num_replicas=3, routing='least-kv')\n"
            "print(json.dumps(simulate_fleet(config, trace, "
            "Schedule.dynamic()).to_dict(), sort_keys=True))\n")

        def run(hash_seed):
            env = dict(os.environ, PYTHONPATH=str(repo / "src"),
                       PYTHONHASHSEED=hash_seed)
            proc = subprocess.run([sys.executable, "-c", script], env=env,
                                  capture_output=True, text=True, check=True)
            return json.loads(proc.stdout)

        assert run("0") == run("4242")

    def test_most_free_kv_degrades_to_least_kv_when_unbounded(self, model):
        trace = poisson_trace(rate=500.0, num_requests=8, seed=3,
                              prompt_mean=24.0, prompt_max=64,
                              output_mean=3.0, output_max=8)
        least, most = (
            simulate_fleet(
                FleetConfig(serve=serve_config(model), num_replicas=3,
                            routing=routing),
                trace, Schedule.dynamic()).to_dict()
            for routing in ("least-kv", "most-free-kv"))
        # same dispatch decisions on every request; only the policy label
        # differs in the payload (step_cache is live process-wide memo state,
        # not run state — excluded from run-equality comparisons)
        assert least.pop("routing") == "least-kv"
        assert most.pop("routing") == "most-free-kv"
        for payload in (least, most):
            for replica in payload["replicas"]:
                replica["serving"].pop("step_cache")
        assert least == most

    def test_free_kv_pages_signal(self, model):
        from repro.platforms import get_platform
        from repro.serve import kv_bytes_per_row

        unbounded, = self.engines(model, n=1)
        assert unbounded.free_kv_pages == float("inf")
        row_bytes = kv_bytes_per_row(model, 1)
        platform = get_platform("sda").replace(
            "sda-test-fleet", hbm_capacity_bytes=8 * 64 * row_bytes)
        bounded, = self.engines(model, n=1, hardware=platform)
        assert bounded.free_kv_pages == 8.0
        bounded.submit(trace_from_lists([0.0], [16], [2], name="t").requests[0])
        bounded.step()
        assert bounded.free_kv_pages == 7.0

    def test_fleet_aggregates_memory_counters(self, model):
        from repro.platforms import get_platform
        from repro.serve import kv_bytes_per_row

        row_bytes = kv_bytes_per_row(model, 1)
        platform = get_platform("sda").replace(
            "sda-test-fleet-small", hbm_capacity_bytes=6 * 64 * row_bytes)
        trace = trace_from_lists(
            arrivals=[0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            prompt_tokens=[96, 96, 96, 96, 96, 96],
            output_tokens=[96, 96, 96, 96, 96, 96],
            name="fleet-pressure")
        fleet = simulate_fleet(
            FleetConfig(serve=serve_config(model, batch_cap=4),
                        num_replicas=2, routing="most-free-kv"),
            trace, Schedule.dynamic(), hardware=platform)
        expected = sum(r.serving.memory.preemptions for r in fleet.replicas
                       if r.serving.memory is not None)
        assert fleet.preemptions == expected
        metrics = fleet.metrics()
        assert metrics["preemptions"] == float(fleet.preemptions)
        assert 0.0 < metrics["kv_occupancy_max"] <= 1.0
        assert fleet.num_requests == 6
        restored = FleetReport.from_dict(fleet.to_dict())
        assert restored.to_dict() == fleet.to_dict()
        assert restored.metrics() == fleet.metrics()
