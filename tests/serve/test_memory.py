"""Finite KV memory: the page pool, eviction policies and engine preemption."""

import json
from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.core.errors import ConfigError
from repro.platforms import get_platform
from repro.schedules import Schedule
from repro.serve import (KVPagePool, MemoryStats, ServeConfig, ServingReport,
                         eviction_policy_names, get_eviction_policy,
                         kv_bytes_per_row, simulate_serving, trace_from_lists)
from repro.workloads.configs import QWEN3_30B_A3B, scaled_config


@pytest.fixture(scope="module")
def model():
    return replace(scaled_config(QWEN3_30B_A3B, scale=64), name="mem-2e",
                   num_experts=2, experts_per_token=1)


def config(model, **overrides):
    defaults = dict(batch_cap=4, num_layers=1, kv_tile_rows=16, seed=3)
    defaults.update(overrides)
    return ServeConfig(model=model, **defaults)


def tiny_platform(model, pages, *, kv_tile_rows=16, num_layers=1):
    """An SDA variant whose HBM holds exactly ``pages`` KV pages."""
    row_bytes = kv_bytes_per_row(model, num_layers)
    return get_platform("sda").replace(
        f"sda-test-{pages}p", hbm_capacity_bytes=pages * kv_tile_rows * row_bytes)


class TestPagePoolAccounting:
    def test_admit_grow_release_roundtrip(self):
        pool = KVPagePool(capacity_pages=4, page_rows=16)
        assert pool.try_admit(0, rows=20, max_rows=64)  # 2 pages
        assert pool.used_pages == 2 and pool.free_pages == 2
        assert pool.try_grow(0, rows=32)   # still 2 pages
        assert pool.used_pages == 2
        assert pool.try_grow(0, rows=33)   # crosses into page 3
        assert pool.used_pages == 3
        assert pool.release(0) == 3
        assert pool.used_pages == 0 and pool.used_rows == 0
        assert pool.stats()["releases"] == 1

    def test_pages_for_ceil_with_min_one(self):
        pool = KVPagePool(capacity_pages=4, page_rows=16)
        assert pool.pages_for(0) == 1
        assert pool.pages_for(16) == 1
        assert pool.pages_for(17) == 2

    def test_admit_fails_when_full_and_counts(self):
        pool = KVPagePool(capacity_pages=2, page_rows=16)
        assert pool.try_admit(0, rows=32, max_rows=32)
        assert not pool.try_admit(1, rows=1, max_rows=16)
        assert pool.failed_admits == 1
        assert pool.used_pages == 2  # the failed admit reserved nothing

    def test_grow_fails_when_full_and_leaves_reservation(self):
        pool = KVPagePool(capacity_pages=2, page_rows=16)
        assert pool.try_admit(0, rows=16, max_rows=64)
        assert pool.try_admit(1, rows=16, max_rows=64)
        assert not pool.try_grow(0, rows=17)
        assert pool.failed_grows == 1
        assert pool.used_pages == 2
        # freeing the neighbour unblocks the growth
        pool.release(1)
        assert pool.try_grow(0, rows=17)

    def test_occupancy_fragmentation_and_peak(self):
        pool = KVPagePool(capacity_pages=4, page_rows=16)
        assert pool.occupancy == 0.0 and pool.fragmentation == 0.0
        pool.try_admit(0, rows=8, max_rows=8)
        assert pool.occupancy == pytest.approx(0.25)
        assert pool.fragmentation == pytest.approx(0.5)  # 8 of 16 rows unused
        pool.try_admit(1, rows=16, max_rows=16)
        assert pool.peak_pages == 2
        pool.release(0)
        assert pool.peak_pages == 2  # peak is sticky

    def test_contiguous_reserves_lifetime_upfront(self):
        pool = KVPagePool(capacity_pages=4, page_rows=16, mode="contiguous")
        assert pool.try_admit(0, rows=4, max_rows=48)  # 3 pages, not 1
        assert pool.used_pages == 3
        # growth inside the lifetime never allocates, never fails
        assert pool.try_grow(0, rows=48)
        assert pool.used_pages == 3 and pool.grows == 0
        # exceeding the reservation is a scheduler bug, not a soft failure
        with pytest.raises(ConfigError):
            pool.try_grow(0, rows=49)

    def test_double_admit_and_unknown_ids_raise(self):
        pool = KVPagePool(capacity_pages=4, page_rows=16)
        pool.try_admit(0, rows=1, max_rows=1)
        with pytest.raises(ConfigError):
            pool.try_admit(0, rows=1, max_rows=1)
        with pytest.raises(ConfigError):
            pool.try_grow(7, rows=1)
        with pytest.raises(ConfigError):
            pool.release(7)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ConfigError):
            KVPagePool(capacity_pages=0, page_rows=16)
        with pytest.raises(ConfigError):
            KVPagePool(capacity_pages=1, page_rows=0)
        with pytest.raises(ConfigError):
            KVPagePool(capacity_pages=1, page_rows=16, mode="virtual")

    def test_from_bytes_floor_divides_and_rejects_subpage(self):
        pool = KVPagePool.from_bytes(capacity_bytes=1000, page_rows=16,
                                     row_bytes=16)  # 256 B/page -> 3 pages
        assert pool.capacity_pages == 3
        with pytest.raises(ConfigError):
            KVPagePool.from_bytes(capacity_bytes=255, page_rows=16, row_bytes=16)
        with pytest.raises(ConfigError):
            KVPagePool.from_bytes(capacity_bytes=1000, page_rows=16, row_bytes=0)


def _candidate(request_id, kv_length, admitted_at):
    return SimpleNamespace(request=SimpleNamespace(request_id=request_id),
                           kv_length=kv_length, admitted_at=admitted_at)


class TestEvictionPolicies:
    CANDIDATES = [_candidate(0, kv_length=10, admitted_at=100.0),
                  _candidate(1, kv_length=30, admitted_at=50.0),
                  _candidate(2, kv_length=30, admitted_at=200.0)]

    def test_registry_names_sorted_and_unknown_rejected(self):
        assert eviction_policy_names() == sorted(eviction_policy_names())
        assert {"evict-lru", "evict-largest-kv", "evict-youngest"} <= \
            set(eviction_policy_names())
        with pytest.raises(ConfigError):
            get_eviction_policy("evict-random")

    def test_lru_picks_oldest_admission(self):
        policy = get_eviction_policy("evict-lru")
        assert policy.select(self.CANDIDATES).request.request_id == 1

    def test_largest_kv_picks_biggest_context(self):
        policy = get_eviction_policy("evict-largest-kv")
        # 1 and 2 tie on kv_length; the lower request_id wins the tie
        assert policy.select(self.CANDIDATES).request.request_id == 1

    def test_youngest_picks_latest_admission(self):
        policy = get_eviction_policy("evict-youngest")
        assert policy.select(self.CANDIDATES).request.request_id == 2

    def test_selection_is_order_independent(self):
        # determinism across Python hash seeds: the choice depends on the
        # candidates' keys, never on iteration order
        for name in eviction_policy_names():
            policy = get_eviction_policy(name)
            forward = policy.select(self.CANDIDATES).request.request_id
            backward = policy.select(list(reversed(self.CANDIDATES)))
            assert backward.request.request_id == forward


class TestMemoryStatsSerialization:
    STATS = MemoryStats(mode="paged", page_rows=16, capacity_pages=8,
                        row_bytes=64, peak_pages=7, preemptions=3,
                        recompute_tokens=41, admission_stalls=12,
                        occupancy_mean=0.5, occupancy_max=0.875,
                        fragmentation_mean=0.1, fragmentation_max=0.3)

    def test_to_from_dict_round_trips_through_json(self):
        payload = json.loads(json.dumps(self.STATS.to_dict()))
        assert MemoryStats.from_dict(payload) == self.STATS

    def test_empty_metrics_mirrors_metric_keys(self):
        assert set(MemoryStats.empty_metrics()) == set(self.STATS.metrics())
        assert all(v == 0.0 for v in MemoryStats.empty_metrics().values())


@pytest.fixture(scope="module")
def pressure_trace():
    """Four long-decode requests landing together on a small pool."""
    return trace_from_lists(
        arrivals=[0.0, 0.0, 0.0, 0.0, 100.0, 100.0],
        prompt_tokens=[24, 24, 24, 24, 16, 16],
        output_tokens=[24, 24, 24, 24, 16, 16],
        name="pressure")


class TestEnginePreemption:
    def test_pressure_preempts_and_still_completes_everyone(self, model,
                                                            pressure_trace):
        """No starvation: every request completes exactly once even when the
        pool forces repeated eviction and recompute."""
        platform = tiny_platform(model, pages=6)
        report = simulate_serving(config(model), pressure_trace,
                                  Schedule.dynamic(), hardware=platform)
        assert report.memory is not None
        assert report.memory.preemptions > 0
        assert report.memory.recompute_tokens > 0
        assert sorted(r.request_id for r in report.requests) == list(range(6))

    def test_victim_selection_is_deterministic_per_policy(self, model,
                                                          pressure_trace):
        platform = tiny_platform(model, pages=6)
        for policy in eviction_policy_names():
            cfg = config(model, eviction_policy=policy)
            first = simulate_serving(cfg, pressure_trace, Schedule.dynamic(),
                                     hardware=platform)
            second = simulate_serving(cfg, pressure_trace, Schedule.dynamic(),
                                      hardware=platform)
            assert second.to_dict() == first.to_dict()

    def test_policies_shape_the_recompute_bill_differently(self, model):
        # staggered arrivals + mixed context sizes make age, size and youth
        # rank the candidates differently
        trace = trace_from_lists(
            arrivals=[0.0, 200.0, 400.0, 600.0, 800.0, 1000.0],
            prompt_tokens=[40, 8, 24, 8, 40, 8],
            output_tokens=[32, 24, 24, 24, 16, 16],
            name="staggered")
        platform = tiny_platform(model, pages=7)
        by_policy = {
            policy: simulate_serving(config(model, eviction_policy=policy),
                                     trace, Schedule.dynamic(),
                                     hardware=platform).memory
            for policy in eviction_policy_names()}
        # all policies preempt under this trace, and they disagree on the
        # outcome (otherwise the registry is decorative)
        assert all(m.preemptions > 0 for m in by_policy.values())
        bills = {(m.preemptions, m.recompute_tokens) for m in by_policy.values()}
        assert len(bills) == len(by_policy)

    def test_contiguous_mode_never_preempts(self, model, pressure_trace):
        platform = tiny_platform(model, pages=6)
        report = simulate_serving(config(model, kv_mode="contiguous"),
                                  pressure_trace, Schedule.dynamic(),
                                  hardware=platform)
        assert report.memory.preemptions == 0
        assert report.memory.recompute_tokens == 0
        assert report.memory.admission_stalls > 0  # pressure shows up here
        assert sorted(r.request_id for r in report.requests) == list(range(6))

    def test_oversized_request_rejected_at_submit(self, model):
        platform = tiny_platform(model, pages=2)
        trace = trace_from_lists([0.0], [24], [24], name="too-big")  # 3 pages
        with pytest.raises(ConfigError):
            simulate_serving(config(model), trace, Schedule.dynamic(),
                             hardware=platform)

    def test_kv_occupancy_recorded_on_every_step(self, model, pressure_trace):
        platform = tiny_platform(model, pages=6)
        report = simulate_serving(config(model), pressure_trace,
                                  Schedule.dynamic(), hardware=platform)
        assert all(s.kv_capacity_pages == 6 for s in report.steps)
        assert all(0 <= s.kv_pages <= 6 for s in report.steps)
        assert max(s.kv_pages for s in report.steps) == report.memory.peak_pages
        assert sum(s.preemptions for s in report.steps) == \
            report.memory.preemptions


class TestUnboundedPathUnchanged:
    def test_unbounded_report_has_no_memory_and_zero_slice(self, model,
                                                           pressure_trace):
        report = simulate_serving(config(model), pressure_trace,
                                  Schedule.dynamic())
        assert report.memory is None
        metrics = report.metrics()
        assert metrics["preemptions"] == 0.0
        assert metrics["kv_capacity_pages"] == 0.0

    def test_kv_knobs_are_inert_without_capacity(self, model, pressure_trace):
        """kv_mode / eviction_policy cannot change an unbounded run at all."""
        base = simulate_serving(config(model), pressure_trace,
                                Schedule.dynamic())
        for overrides in ({"kv_mode": "contiguous"},
                          {"eviction_policy": "evict-youngest"}):
            other = simulate_serving(config(model, **overrides),
                                     pressure_trace, Schedule.dynamic())
            assert other.to_dict() == base.to_dict()

    def test_bounded_but_roomy_pool_matches_unbounded(self, model,
                                                      pressure_trace):
        """A pool that never fills changes accounting, not scheduling: the
        requests and steps match the unbounded run exactly."""
        unbounded = simulate_serving(config(model), pressure_trace,
                                     Schedule.dynamic())
        roomy = simulate_serving(config(model), pressure_trace,
                                 Schedule.dynamic(),
                                 hardware=tiny_platform(model, pages=64))
        assert roomy.memory.preemptions == 0
        assert roomy.memory.admission_stalls == 0
        assert [r.__dict__ for r in roomy.requests] == \
            [r.__dict__ for r in unbounded.requests]
        assert roomy.total_cycles == unbounded.total_cycles


class TestServingReportMemoryRoundTrip:
    def test_bounded_report_round_trips_through_json(self, model,
                                                     pressure_trace):
        report = simulate_serving(config(model), pressure_trace,
                                  Schedule.dynamic(),
                                  hardware=tiny_platform(model, pages=6))
        payload = json.loads(json.dumps(report.to_dict()))
        restored = ServingReport.from_dict(payload)
        assert restored.to_dict() == report.to_dict()
        assert restored.memory == report.memory
        assert restored.metrics() == report.metrics()

    def test_pre_memory_payload_still_loads(self, model, pressure_trace):
        """Reports serialized before the memory subsystem (no 'memory' key,
        no kv fields in steps) must keep loading."""
        report = simulate_serving(config(model), pressure_trace,
                                  Schedule.dynamic())
        payload = report.to_dict()
        del payload["memory"]
        for step in payload["steps"]:
            for key in ("kv_rows", "kv_pages", "kv_capacity_pages",
                        "preemptions"):
                del step[key]
        restored = ServingReport.from_dict(json.loads(json.dumps(payload)))
        assert restored.memory is None
        assert restored.total_cycles == report.total_cycles
