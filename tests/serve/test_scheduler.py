"""Behavioural invariants of the continuous-batching scheduler."""

from dataclasses import replace

import pytest

from repro.core.errors import ConfigError
from repro.schedules import Schedule
from repro.serve import (ServeConfig, StepMemo, clear_step_cache, poisson_trace,
                         simulate_serving, step_cache_stats, trace_from_lists)
from repro.workloads.configs import QWEN3_30B_A3B, scaled_config


@pytest.fixture(scope="module")
def model():
    return replace(scaled_config(QWEN3_30B_A3B, scale=64), name="sched-2e",
                   num_experts=2, experts_per_token=1)


def config(model, **overrides):
    defaults = dict(batch_cap=2, num_layers=1, kv_tile_rows=64, seed=3)
    defaults.update(overrides)
    return ServeConfig(model=model, **defaults)


@pytest.fixture(scope="module")
def busy_report(model):
    """Six requests arriving faster than a cap-2 server drains them."""
    trace = trace_from_lists(
        arrivals=[0.0, 0.0, 0.0, 500.0, 500.0, 1000.0],
        prompt_tokens=[32, 16, 16, 32, 16, 16],
        output_tokens=[3, 2, 2, 3, 1, 2],
        name="busy")
    return simulate_serving(config(model), trace, Schedule.dynamic())


class TestSchedulingInvariants:
    def test_every_request_completes_exactly_once(self, busy_report):
        assert busy_report.num_requests == 6
        assert sorted(r.request_id for r in busy_report.requests) == list(range(6))

    def test_batch_cap_respected_every_step(self, busy_report):
        assert all(step.running <= 2 for step in busy_report.steps)
        assert max(step.running for step in busy_report.steps) == 2

    def test_queue_builds_when_cap_saturated(self, busy_report):
        assert max(step.queued for step in busy_report.steps) >= 1

    def test_no_service_before_arrival(self, busy_report):
        for record in busy_report.requests:
            assert record.first_token > record.arrival
            assert record.completion >= record.first_token

    def test_fifo_admission_orders_first_tokens_by_arrival(self, busy_report):
        records = sorted(busy_report.requests,
                         key=lambda r: (r.arrival, r.request_id))
        first_tokens = [r.first_token for r in records]
        assert first_tokens == sorted(first_tokens)

    def test_token_conservation_across_steps(self, busy_report):
        # each request contributes its prompt (prefill step) plus one token
        # per decode step; the step samples must account for every one
        expected = sum(r.prompt_tokens + (r.output_tokens - 1)
                       for r in busy_report.requests)
        assert sum(step.tokens for step in busy_report.steps) == expected

    def test_steps_are_contiguous_in_time(self, busy_report):
        for prev, cur in zip(busy_report.steps, busy_report.steps[1:]):
            assert cur.start >= prev.start + prev.cycles - 1e-9
        last = busy_report.steps[-1]
        assert busy_report.total_cycles == pytest.approx(last.start + last.cycles)


class TestIdleJump:
    def test_server_sleeps_through_an_idle_gap(self, model):
        trace = trace_from_lists(
            arrivals=[0.0, 500_000.0],
            prompt_tokens=[16, 16],
            output_tokens=[2, 2],
            name="gapped")
        report = simulate_serving(config(model), trace, Schedule.dynamic())
        # the second request's prefill step starts exactly at its arrival,
        # not after idle-spinning step after step
        starts = [step.start for step in report.steps]
        assert 500_000.0 in starts
        # and the gap contains no steps at all
        assert not any(10_000 < start < 500_000 for start in starts)
        assert report.requests[1].ttft < 100_000


class TestDeterminismAndMemo:
    def test_memoization_does_not_change_results(self, model):
        trace = poisson_trace(rate=200.0, num_requests=6, seed=1,
                              prompt_mean=32.0, prompt_max=64,
                              output_mean=3.0, output_max=6)
        cold_cache_entries = clear_step_cache()
        del cold_cache_entries
        first = simulate_serving(config(model), trace, Schedule.dynamic())
        # warm memo: same results, bit for bit
        second = simulate_serving(config(model), trace, Schedule.dynamic())
        assert second.to_dict() == first.to_dict()
        # cleared memo: still identical
        clear_step_cache()
        third = simulate_serving(config(model), trace, Schedule.dynamic())
        assert third.to_dict() == first.to_dict()
        assert third.distinct_steps == first.distinct_steps

    def test_schedule_changes_the_latencies(self, model):
        trace = poisson_trace(rate=200.0, num_requests=5, seed=2,
                              prompt_mean=32.0, prompt_max=64,
                              output_mean=3.0, output_max=6)
        dynamic = simulate_serving(config(model), trace, Schedule.dynamic())
        static = simulate_serving(config(model), trace,
                                  Schedule.static("static", tile_rows=4))
        assert dynamic.schedule == "dynamic" and static.schedule == "static"
        assert dynamic.to_dict() != static.to_dict()

    def test_seed_changes_routing_hence_latencies(self, model):
        trace = trace_from_lists([0.0], [64], [2], name="one")
        a = simulate_serving(config(model, seed=0), trace, Schedule.dynamic())
        b = simulate_serving(config(model, seed=1), trace, Schedule.dynamic())
        # same trace, different MoE routing seed: steps may (and for this
        # config do) cost differently, but structure is identical
        assert len(a.steps) == len(b.steps)
        assert a.num_requests == b.num_requests


class TestBoundedMemo:
    def test_memo_evicts_lru_beyond_maxsize(self):
        memo = StepMemo(maxsize=2)
        memo.put(("ctx", (1,)), 1.0)
        memo.put(("ctx", (2,)), 2.0)
        assert memo.get(("ctx", (1,))) == 1.0  # (1,) is now most-recent
        memo.put(("ctx", (3,)), 3.0)           # evicts (2,), the LRU entry
        assert len(memo) == 2
        assert memo.get(("ctx", (2,))) is None
        assert memo.get(("ctx", (1,))) == 1.0
        assert memo.get(("ctx", (3,))) == 3.0
        assert memo.stats()["evictions"] == 1

    def test_memo_counts_hits_and_misses(self):
        memo = StepMemo(maxsize=4)
        assert memo.get(("ctx", (1,))) is None
        memo.put(("ctx", (1,)), 1.0)
        memo.get(("ctx", (1,)))
        memo.get(("ctx", (1,)))
        stats = memo.stats()
        assert stats == {"size": 1, "maxsize": 4, "hits": 2, "misses": 1,
                         "evictions": 0}
        assert memo.clear() == 1
        assert memo.stats() == {"size": 0, "maxsize": 4, "hits": 0,
                                "misses": 0, "evictions": 0}

    def test_memo_rejects_nonpositive_maxsize(self):
        with pytest.raises(ConfigError):
            StepMemo(maxsize=0)

    def test_process_memo_reports_activity(self, model):
        clear_step_cache()
        trace = poisson_trace(rate=200.0, num_requests=4, seed=1,
                              prompt_mean=32.0, prompt_max=64,
                              output_mean=3.0, output_max=6)
        simulate_serving(config(model), trace, Schedule.dynamic())
        cold = step_cache_stats()
        assert cold["size"] > 0 and cold["misses"] > 0
        simulate_serving(config(model), trace, Schedule.dynamic())
        warm = step_cache_stats()
        assert warm["hits"] > cold["hits"]
        assert warm["size"] == cold["size"]

    def test_eviction_pressure_never_changes_results(self, model, monkeypatch):
        """A memo far too small to hold one run still reproduces the report
        bit for bit — eviction costs re-simulation, never correctness."""
        from repro.serve import scheduler

        trace = poisson_trace(rate=300.0, num_requests=6, seed=1,
                              prompt_mean=32.0, prompt_max=64,
                              output_mean=3.0, output_max=6)
        clear_step_cache()
        reference = simulate_serving(config(model), trace, Schedule.dynamic())
        monkeypatch.setattr(scheduler, "_STEP_MEMO", StepMemo(maxsize=1))
        squeezed = simulate_serving(config(model), trace, Schedule.dynamic())
        assert squeezed.to_dict() == reference.to_dict()
        stats = scheduler.step_cache_stats()
        assert stats["maxsize"] == 1
        assert stats["evictions"] > 0


class TestFloatAccumulation:
    def test_clock_is_an_exact_prefix_sum_of_steps(self, model):
        """``now += cycles`` with ``now == start`` makes the final clock
        *exactly* ``last.start + last.cycles`` — no tolerance, pinned so a
        refactor can't quietly reintroduce drift between the step records
        and the report's total."""
        trace = poisson_trace(rate=500.0, num_requests=24, seed=9,
                              prompt_mean=32.0, prompt_max=64,
                              output_mean=4.0, output_max=8)
        report = simulate_serving(config(model), trace, Schedule.dynamic())
        assert len(report.steps) > 20
        last = report.steps[-1]
        assert last.start + last.cycles == report.total_cycles  # exact
        # every step starts exactly where the previous ended, or later
        # (an idle jump to a queued arrival) — never earlier, never drifted
        for prev, cur in zip(report.steps, report.steps[1:]):
            end = prev.start + prev.cycles
            assert cur.start == end or cur.start > end


class TestEdgeCases:
    def test_empty_trace_yields_empty_report(self, model):
        empty = trace_from_lists([], [], [], name="empty")
        report = simulate_serving(config(model), empty, Schedule.dynamic())
        assert report.num_requests == 0
        assert report.steps == ()
        assert report.total_cycles == 0.0
        assert report.metrics()["goodput_rpmc"] == 0.0

    def test_single_request_single_token(self, model):
        trace = trace_from_lists([0.0], [16], [1], name="one-shot")
        report = simulate_serving(config(model), trace, Schedule.dynamic())
        assert len(report.steps) == 1
        record = report.requests[0]
        assert record.ttft == record.e2e
        assert record.tpot == 0.0

    def test_cap_one_serializes_everything(self, model):
        trace = trace_from_lists([0.0, 0.0], [16, 16], [2, 2], name="pair")
        report = simulate_serving(config(model, batch_cap=1), trace,
                                  Schedule.dynamic())
        assert all(step.running == 1 for step in report.steps)
        # strictly sequential: the second request starts after the first ends
        first, second = report.requests
        assert second.first_token > first.completion

    def test_invalid_config_rejected(self, model):
        with pytest.raises(ConfigError):
            ServeConfig(model=model, batch_cap=0)
        with pytest.raises(ConfigError):
            ServeConfig(model=model, num_layers=0)
