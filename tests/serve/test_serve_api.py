"""Integration of repro.serve with the api / sweep / bench layers."""

from dataclasses import replace

import pytest

import repro.api as api
from repro.api.workload import workload_from_params
from repro.schedules import Schedule
from repro.serve import (ServeWorkload, ServingReport, latency_load_spec,
                         poisson_trace)
from repro.sweep import ResultCache, SweepRunner, canonicalize
from repro.workloads.configs import QWEN3_30B_A3B, scaled_config


@pytest.fixture(scope="module")
def model():
    return replace(scaled_config(QWEN3_30B_A3B, scale=64), name="api-2e",
                   num_experts=2, experts_per_token=1)


@pytest.fixture(scope="module")
def tiny_trace():
    return poisson_trace(rate=300.0, num_requests=4, seed=0, prompt_mean=32.0,
                         prompt_max=64, output_mean=3.0, output_max=4)


class TestServeFacade:
    def test_serve_is_part_of_the_public_api(self):
        assert "serve" in api.__all__
        assert callable(api.serve)

    def test_facade_returns_a_full_report(self, model, tiny_trace):
        report = api.serve(model, tiny_trace, batch_cap=2, num_layers=1, seed=0)
        assert isinstance(report, ServingReport)
        assert report.num_requests == len(tiny_trace)
        assert report.schedule == "dynamic"  # the default schedule

    def test_serve_scenarios_are_registered(self):
        names = api.scenario_names()
        for name in ("serve-poisson", "serve-batch-cap", "serve-burst"):
            assert name in names
            scenario = api.get_scenario(name, num_requests=2)
            assert len(scenario) >= 2


class TestServeWorkloadAdapter:
    def test_params_reconstruct_the_workload(self, model, tiny_trace):
        workload = ServeWorkload(model=model, trace=tiny_trace, batch_cap=2,
                                 num_layers=1)
        rebuilt = workload_from_params(workload.kind, workload.params())
        assert rebuilt == workload

    def test_workload_canonicalizes_for_cache_hashing(self, model, tiny_trace):
        workload = ServeWorkload(model=model, trace=tiny_trace, batch_cap=2)
        payload = canonicalize(workload)
        assert payload["__dataclass__"].endswith("ServeWorkload")

    def test_build_is_rejected_run_returns_flat_metrics(self, model, tiny_trace):
        from repro.core.errors import ConfigError

        workload = ServeWorkload(model=model, trace=tiny_trace, batch_cap=2,
                                 num_layers=1)
        with pytest.raises(ConfigError, match="no single Program"):
            workload.build(Schedule.dynamic())
        metrics = workload.run(Schedule.dynamic())
        assert metrics["requests"] == float(len(tiny_trace))
        assert metrics["ttft_p50"] > 0


class TestScenarioExecution:
    def test_scenario_runs_and_caches(self, model, tiny_trace, tmp_path):
        scenario = api.Scenario(
            name="serve-test",
            workloads=ServeWorkload(model=model, trace=tiny_trace, batch_cap=2,
                                    num_layers=1),
            schedules={"dynamic": Schedule.dynamic(),
                       "static": Schedule.static("static", tile_rows=4)})
        cache = ResultCache(tmp_path / "cache")
        cold = api.run(scenario, runner=SweepRunner(jobs=1, cache=cache))
        assert cold.stats.simulated == 2
        warm = api.run(scenario, runner=SweepRunner(jobs=1, cache=cache))
        assert warm.stats.simulated == 0
        assert warm.stats.cache_hits == 2
        assert [r.metrics for r in warm.rows] == [r.metrics for r in cold.rows]
        # the grid is addressable by (workload, schedule) labels
        cell = cold[(scenario.grid()[0][0], "dynamic")]
        assert cell["goodput_rpmc"] > 0


class TestLatencyLoadSpec:
    def test_grid_shape_and_coordinates(self, model):
        spec = latency_load_spec(model, Schedule.dynamic(), rates=(50.0, 400.0),
                                 batch_caps=(1, 2), num_requests=3, seed=0,
                                 num_layers=1, prompt_mean=32.0, prompt_max=64,
                                 output_mean=3.0, output_max=4)
        assert len(spec) == 4
        assert spec.task == "serve"
        metrics = SweepRunner(jobs=1).metrics(spec)
        coords = {(m["arrival_rate"], m["batch_cap"]) for m in metrics}
        assert coords == {(50.0, 1.0), (50.0, 2.0), (400.0, 1.0), (400.0, 2.0)}

    def test_rerun_is_deterministic(self, model):
        spec = latency_load_spec(model, Schedule.dynamic(), rates=(200.0,),
                                 batch_caps=(2,), num_requests=3, seed=1,
                                 num_layers=1, prompt_mean=32.0, prompt_max=64,
                                 output_mean=3.0, output_max=4)
        first = SweepRunner(jobs=1).metrics(spec)
        second = SweepRunner(jobs=1).metrics(spec)
        assert first == second

    def test_load_increases_tail_latency(self, model):
        spec = latency_load_spec(model, Schedule.dynamic(),
                                 rates=(20.0, 2000.0), batch_caps=(1,),
                                 num_requests=6, seed=0, num_layers=1,
                                 prompt_mean=32.0, prompt_max=64,
                                 output_mean=3.0, output_max=4)
        light, heavy = SweepRunner(jobs=1).metrics(spec)
        assert heavy["e2e_p95"] > light["e2e_p95"]
        assert heavy["queue_queued_mean"] >= light["queue_queued_mean"]


class TestBenchIntegration:
    def test_serve_bench_cases_registered_and_buildable(self):
        from repro.bench.suite import CASES

        for name in ("serve-poisson", "serve-burst"):
            assert name in CASES
            scenario = CASES[name].scenario("smoke")
            assert len(scenario) >= 2
