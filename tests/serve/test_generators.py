"""Workload-generator tests: registry, determinism, rate shapes, blends."""

from collections import Counter

import pytest

from repro.core.errors import ConfigError
from repro.serve import (MCYCLE, generate_trace, generator_names,
                         get_generator, register_generator)
from repro.serve.generators import (DEFAULT_TENANTS, diurnal_trace,
                                    heavy_tail_trace, multitenant_trace,
                                    ramp_trace)


class TestRegistry:
    def test_builtin_generators_registered(self):
        names = generator_names()
        for name in ("poisson", "burst", "heavy-tail", "diurnal", "ramp",
                     "multitenant"):
            assert name in names

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ConfigError, match="poisson"):
            get_generator("no-such-shape")

    def test_builtins_are_sealed(self):
        with pytest.raises(ConfigError):
            register_generator("poisson")(lambda **kw: None)

    def test_generate_trace_dispatches_by_name(self):
        via_registry = generate_trace("heavy-tail", rate=100.0,
                                      num_requests=16, seed=4)
        direct = heavy_tail_trace(rate=100.0, num_requests=16, seed=4)
        assert via_registry == direct


class TestDeterminismAndShape:
    @pytest.mark.parametrize("generator", ["heavy-tail", "diurnal", "ramp",
                                           "multitenant"])
    def test_same_arguments_reproduce_the_trace(self, generator):
        a = generate_trace(generator, rate=120.0, num_requests=24, seed=7)
        b = generate_trace(generator, rate=120.0, num_requests=24, seed=7)
        assert a == b
        assert generate_trace(generator, rate=120.0, num_requests=24,
                              seed=8) != a

    @pytest.mark.parametrize("generator", ["heavy-tail", "diurnal", "ramp",
                                           "multitenant"])
    def test_exact_count_sorted_arrivals_contiguous_ids(self, generator):
        trace = generate_trace(generator, rate=200.0, num_requests=31, seed=1)
        assert len(trace) == 31
        arrivals = [r.arrival for r in trace]
        assert arrivals == sorted(arrivals)
        assert [r.request_id for r in trace] == list(range(31))

    @pytest.mark.parametrize("generator", ["heavy-tail", "diurnal", "ramp",
                                           "multitenant"])
    def test_rejects_degenerate_parameters(self, generator):
        with pytest.raises(ConfigError):
            generate_trace(generator, rate=0.0, num_requests=4)
        with pytest.raises(ConfigError):
            generate_trace(generator, rate=10.0, num_requests=0)


class TestHeavyTail:
    def test_tail_inflates_the_length_population(self):
        body = heavy_tail_trace(rate=100.0, num_requests=600, seed=0,
                                tail_frac=0.0)
        tailed = heavy_tail_trace(rate=100.0, num_requests=600, seed=0,
                                  tail_frac=0.3, tail_alpha=1.1,
                                  prompt_max=100_000, output_max=100_000)
        assert max(r.prompt_tokens for r in tailed) > \
            max(r.prompt_tokens for r in body)

    def test_lengths_respect_caps_and_quantum(self):
        trace = heavy_tail_trace(rate=100.0, num_requests=200, seed=2,
                                 tail_frac=0.5, prompt_quantum=16,
                                 prompt_max=256, output_max=32)
        for request in trace:
            assert request.prompt_tokens % 16 == 0
            assert request.prompt_tokens <= 256
            assert 1 <= request.output_tokens <= 32

    def test_rejects_bad_tail_parameters(self):
        with pytest.raises(ConfigError):
            heavy_tail_trace(rate=10.0, num_requests=4, tail_frac=1.0)
        with pytest.raises(ConfigError):
            heavy_tail_trace(rate=10.0, num_requests=4, tail_alpha=0.0)


def _rate_in(trace, lo, hi):
    """Empirical arrival rate (requests per Mcycle) inside cycle window."""
    count = sum(1 for r in trace if lo <= r.arrival < hi)
    return count / ((hi - lo) / MCYCLE)


class TestTimeVaryingRates:
    def test_diurnal_peaks_and_troughs_follow_the_sine(self):
        # period 2 Mcycles: the first quarter-period around t=0.5M is the
        # crest, the third quarter around t=1.5M the trough
        trace = diurnal_trace(rate=400.0, num_requests=1500, seed=0,
                              amplitude=0.8, period_mcycles=2.0)
        crest = _rate_in(trace, 0.25 * MCYCLE, 0.75 * MCYCLE)
        trough = _rate_in(trace, 1.25 * MCYCLE, 1.75 * MCYCLE)
        assert crest > 2.0 * trough

    def test_ramp_rate_grows_toward_target(self):
        trace = ramp_trace(rate=400.0, num_requests=1500, seed=0,
                           start_frac=0.2, ramp_mcycles=2.0)
        early = _rate_in(trace, 0.0, 0.5 * MCYCLE)
        late = _rate_in(trace, 2.0 * MCYCLE, 2.5 * MCYCLE)
        assert late > 2.0 * early
        # past the ramp the rate holds near the target
        assert late == pytest.approx(400.0, rel=0.35)

    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            diurnal_trace(rate=10.0, num_requests=4, amplitude=1.5)
        with pytest.raises(ConfigError):
            diurnal_trace(rate=10.0, num_requests=4, period_mcycles=0.0)
        with pytest.raises(ConfigError):
            ramp_trace(rate=10.0, num_requests=4, start_frac=0.0)
        with pytest.raises(ConfigError):
            ramp_trace(rate=10.0, num_requests=4, ramp_mcycles=-1.0)


class TestMultitenant:
    def test_counts_split_proportionally_with_remainder_to_earliest(self):
        trace = multitenant_trace(rate=300.0, num_requests=30, seed=0)
        by_priority = Counter(r.priority for r in trace)
        # shares 0.5 / 0.3 / 0.2 over 30 requests
        assert by_priority == {0: 15, 1: 9, 2: 6}
        assert sum(by_priority.values()) == 30

    def test_remainder_assignment_is_deterministic(self):
        trace = multitenant_trace(rate=300.0, num_requests=31, seed=0)
        by_priority = Counter(r.priority for r in trace)
        assert by_priority == {0: 16, 1: 9, 2: 6}

    def test_tenant_length_profiles_differ(self):
        trace = multitenant_trace(rate=300.0, num_requests=120, seed=1)
        mean_prompt = {}
        for priority in (0, 2):
            lengths = [r.prompt_tokens for r in trace if r.priority == priority]
            mean_prompt[priority] = sum(lengths) / len(lengths)
        # analytics (priority 2, prompt_mean 256) dwarfs interactive (64)
        assert mean_prompt[2] > 2.0 * mean_prompt[0]

    def test_blend_kwargs_are_tenant_overridable_defaults(self):
        tenants = ({"name": "a", "share": 0.5, "priority": 0},
                   {"name": "b", "share": 0.5, "priority": 1,
                    "prompt_mean": 512.0})
        trace = multitenant_trace(rate=100.0, num_requests=80, seed=3,
                                  tenants=tenants, prompt_mean=32.0,
                                  prompt_max=4096)
        short = [r.prompt_tokens for r in trace if r.priority == 0]
        long = [r.prompt_tokens for r in trace if r.priority == 1]
        assert sum(long) / len(long) > 4.0 * (sum(short) / len(short))

    def test_custom_tenants_validated(self):
        with pytest.raises(ConfigError, match="share"):
            multitenant_trace(rate=100.0, num_requests=8,
                              tenants=({"name": "x", "share": 0.0},))
        with pytest.raises(ConfigError, match="tenant"):
            multitenant_trace(rate=100.0, num_requests=8, tenants=())

    def test_default_blend_is_three_tenants(self):
        assert len(DEFAULT_TENANTS) == 3
        assert [t["priority"] for t in DEFAULT_TENANTS] == [0, 1, 2]
