"""Utilization-heatmap tests: pinned math, full/streaming equality, guards.

The contract under test (``utilization_heatmap`` on
:class:`~repro.serve.streaming.WindowedTimeline` and
:class:`~repro.serve.report.ServingReport`):

* the per-window batch-fill / KV-occupancy aggregates are exact integer
  arithmetic — pinned on hand-built step samples,
* full-mode and streaming-mode reports of the same run produce identical
  heatmaps (the means divide integer-exact sums),
* streaming reports refuse to re-window (their width was fixed at config
  time), ``batch_cap < 1`` is rejected, and payloads serialized before the
  heatmap slots existed still load.
"""

import pytest

from repro.core.errors import ConfigError
from repro.schedules import Schedule
from repro.serve import (ServeConfig, WindowedTimeline, simulate_serving)
from repro.serve.generators import generate_trace
from repro.serve.library import _serve_model
from repro.serve.report import StepSample
from repro.serve.streaming import _Window


def sample(start, running=2, queued=1, tokens=4, prefills=1, kv_rows=0,
           kv_pages=0, kv_capacity_pages=0, preemptions=0):
    return StepSample(start=start, cycles=100.0, running=running,
                      queued=queued, tokens=tokens, prefills=prefills,
                      kv_rows=kv_rows, kv_pages=kv_pages,
                      kv_capacity_pages=kv_capacity_pages,
                      preemptions=preemptions)


class TestHeatmapMath:
    def test_pinned_on_hand_built_samples(self):
        timeline = WindowedTimeline(window_cycles=1000.0)
        # window 0: two steps, batch fills 2/4 and 4/4, pool 3/10 and 7/10
        timeline.observe(sample(0.0, running=2, kv_rows=128, kv_pages=3,
                                kv_capacity_pages=10))
        timeline.observe(sample(500.0, running=4, tokens=8, kv_rows=256,
                                kv_pages=7, kv_capacity_pages=10,
                                preemptions=1))
        # window 2: one step on an unbounded platform (no pool)
        timeline.observe(sample(2100.0, running=1, kv_rows=64))
        rows = timeline.utilization_heatmap(batch_cap=4)
        assert [row["window"] for row in rows] == [0.0, 2.0]
        first, second = rows
        assert first["start"] == 0.0
        assert first["steps"] == 2.0
        assert first["tokens"] == 12.0
        assert first["batch_fill_mean"] == (2 + 4) / (2 * 4)
        assert first["batch_fill_max"] == 4 / 4
        assert first["kv_occupancy_mean"] == (3 + 7) / (2 * 10)
        assert first["kv_occupancy_max"] == 7 / 10
        assert first["kv_rows_mean"] == (128 + 256) / 2
        assert first["preemptions"] == 1.0
        # the unbounded window reports zero occupancy, not a division error
        assert second["kv_occupancy_mean"] == 0.0
        assert second["kv_occupancy_max"] == 0.0
        assert second["kv_rows_mean"] == 64.0
        assert second["batch_fill_mean"] == 1 / 4

    def test_batch_cap_guard(self):
        timeline = WindowedTimeline(window_cycles=1000.0)
        timeline.observe(sample(0.0))
        with pytest.raises(ConfigError, match="batch_cap"):
            timeline.utilization_heatmap(batch_cap=0)

    def test_empty_timeline_has_no_rows(self):
        assert WindowedTimeline(1000.0).utilization_heatmap(batch_cap=4) == []


@pytest.fixture(scope="module")
def paired_reports():
    """The same heavy-tailed trace served in full and streaming modes."""
    model = _serve_model(32)
    trace = generate_trace("heavy-tail", rate=400.0, num_requests=48, seed=3,
                           prompt_mean=48.0, prompt_max=192,
                           output_mean=4.0, output_max=8)
    reports = {}
    for mode in ("full", "streaming"):
        config = ServeConfig(model=model, batch_cap=4, num_layers=1,
                             report_mode=mode, window_cycles=50_000.0)
        reports[mode] = simulate_serving(config, trace, Schedule.dynamic())
    return reports["full"], reports["streaming"]


class TestReportHeatmap:
    def test_full_and_streaming_heatmaps_identical(self, paired_reports):
        full, streaming = paired_reports
        full_rows = full.utilization_heatmap(window_cycles=50_000.0)
        streaming_rows = streaming.utilization_heatmap()
        assert full_rows == streaming_rows
        assert len(full_rows) >= 1

    def test_full_mode_can_rewindow(self, paired_reports):
        full, _ = paired_reports
        coarse = full.utilization_heatmap(window_cycles=10_000_000.0)
        assert len(coarse) == 1
        fine = full.utilization_heatmap(window_cycles=50_000.0)
        assert sum(r["steps"] for r in fine) == coarse[0]["steps"]
        assert sum(r["tokens"] for r in fine) == coarse[0]["tokens"]

    def test_streaming_mode_refuses_rewindow(self, paired_reports):
        _, streaming = paired_reports
        # the configured width passes; any other width is a hard error
        streaming.utilization_heatmap(window_cycles=50_000.0)
        with pytest.raises(ConfigError, match="re-window"):
            streaming.utilization_heatmap(window_cycles=25_000.0)


class TestWindowBackCompat:
    def test_pre_heatmap_payloads_still_load(self):
        """Payloads serialized before the heatmap slots existed load as 0."""
        window = _Window()
        window.observe(sample(0.0, running=3, kv_rows=96, kv_pages=2,
                              kv_capacity_pages=8))
        payload = window.to_dict()
        for slot in ("kv_rows_sum", "kv_rows_max", "kv_pages_sum",
                     "kv_pages_max", "kv_capacity_pages", "preemptions"):
            del payload[slot]
        loaded = _Window.from_dict(payload)
        assert loaded.steps == 1
        assert loaded.running_sum == 3
        assert loaded.kv_rows_sum == 0
        assert loaded.kv_capacity_pages == 0
