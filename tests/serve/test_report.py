"""ServingReport unit tests: percentile math, serialization, and the golden.

The golden section pins a complete serving run — a known 4-request arrival
trace on a tiny 2-expert model — to recorded TTFT/TPOT/e2e values.  The
simulator is deterministic, so drift here means the serving scheduler, the
step-cost composition or the underlying timing model changed behaviour; if
the change is intentional, re-record the constants (they are printed by
running this file's ``_golden_report`` under ``python -c``).
"""

from dataclasses import replace

import pytest

from repro.core.errors import ConfigError
from repro.schedules import Schedule
from repro.serve import (RequestRecord, ServeConfig, ServingReport, StepSample,
                         percentile, simulate_serving, summarize, trace_from_lists)
from repro.workloads.configs import QWEN3_30B_A3B, scaled_config

REL_TOL = 0.02


class TestPercentileMath:
    """Nearest-rank percentiles: every value is an observed sample."""

    def test_pinned_values_on_one_to_ten(self):
        values = [10, 1, 9, 2, 8, 3, 7, 4, 6, 5]  # unsorted on purpose
        assert percentile(values, 0) == 1.0
        assert percentile(values, 10) == 1.0
        assert percentile(values, 50) == 5.0
        assert percentile(values, 90) == 9.0
        assert percentile(values, 95) == 10.0
        assert percentile(values, 99) == 10.0
        assert percentile(values, 100) == 10.0

    def test_single_sample_is_every_percentile(self):
        for q in (0, 50, 99, 100):
            assert percentile([42.0], q) == 42.0

    def test_rank_boundaries_are_exact(self):
        # with 4 samples, p50 -> ceil(2.0) = rank 2, p51 -> ceil(2.04) = rank 3
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 51) == 3.0
        assert percentile(values, 75) == 3.0
        assert percentile(values, 76) == 4.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ConfigError):
            percentile([], 50)
        with pytest.raises(ConfigError):
            percentile([1.0], 101)
        with pytest.raises(ConfigError):
            percentile([1.0], -1)

    def test_summarize_empty_sample_is_all_zero(self):
        summary = summarize([])
        assert set(summary) == {"mean", "max", "p50", "p90", "p95", "p99",
                                "count"}
        assert all(v == 0.0 for v in summary.values())
        # count distinguishes "no samples" from a legitimately all-zero sample
        assert summarize([0.0, 0.0])["count"] == 2.0

    def test_summarize_matches_percentile(self):
        values = [float(i) for i in range(1, 101)]
        summary = summarize(values)
        assert summary["mean"] == 50.5
        assert summary["max"] == 100.0
        assert summary["p50"] == 50.0
        assert summary["p99"] == 99.0
        assert summary["count"] == 100.0

    def test_summarize_single_sort_matches_per_percentile_sorts(self):
        # unsorted, duplicate-heavy input: the sort-once fast path must agree
        # with independent nearest-rank percentile() calls on every point
        values = [5.0, 1.0, 5.0, 3.0, 9.0, 1.0, 7.0]
        summary = summarize(values)
        for q in (50, 90, 95, 99):
            assert summary[f"p{q}"] == percentile(values, q)


class TestRequestRecord:
    def test_latency_definitions(self):
        record = RequestRecord(request_id=0, arrival=100.0, first_token=350.0,
                               completion=950.0, prompt_tokens=32, output_tokens=4)
        assert record.ttft == 250.0
        assert record.tpot == pytest.approx(200.0)  # (950-350)/3
        assert record.e2e == 850.0

    def test_single_token_output_has_zero_tpot(self):
        record = RequestRecord(request_id=0, arrival=0.0, first_token=10.0,
                               completion=10.0, prompt_tokens=16, output_tokens=1)
        assert record.tpot == 0.0


class TestSerialization:
    def _report(self):
        return ServingReport(
            trace="t", schedule="dynamic", batch_cap=4,
            requests=(RequestRecord(0, 0.0, 10.0, 30.0, 16, 3),
                      RequestRecord(1, 5.0, 12.0, 12.0, 16, 1)),
            steps=(StepSample(0.0, 10.0, 2, 1, 33, 2),
                   StepSample(10.0, 2.0, 1, 0, 1, 0)),
            total_cycles=30.0, distinct_steps=2)

    def test_round_trip_is_bit_identical(self):
        report = self._report()
        restored = ServingReport.from_dict(report.to_dict())
        assert restored.to_dict() == report.to_dict()
        assert restored.requests == report.requests
        assert restored.steps == report.steps

    def test_metrics_flat_and_json_able(self):
        import json

        metrics = self._report().metrics()
        assert all(isinstance(v, float) for v in metrics.values())
        json.dumps(metrics)  # must not raise
        assert metrics["requests"] == 2.0
        assert metrics["ttft_p50"] == 7.0   # min(10-0, 12-5) at rank 1 of 2
        assert metrics["queue_queued_max"] == 1.0

    def test_empty_report_has_zero_metrics(self):
        empty = ServingReport(trace="t", schedule="s", batch_cap=1)
        metrics = empty.metrics()
        assert metrics["requests"] == 0.0
        assert metrics["goodput_rpmc"] == 0.0
        assert metrics["ttft_p95"] == 0.0
        assert ServingReport.from_dict(empty.to_dict()).to_dict() == empty.to_dict()


class TestStepCacheStats:
    """``to_dict``'s ``step_cache`` key: live memo counters, not run state."""

    def _report(self):
        return ServingReport(trace="t", schedule="dynamic", batch_cap=4,
                             total_cycles=1.0)

    def test_payload_carries_integer_counters(self):
        payload = self._report().to_dict()
        stats = payload["step_cache"]
        assert set(stats) == {"size", "maxsize", "hits", "misses", "evictions"}
        assert all(isinstance(v, int) for v in stats.values())

    def test_from_dict_ignores_and_metrics_excludes_it(self):
        # sweep-cache payloads must be pure functions of the point, so the
        # live counters never leak into metrics() and never affect loading
        report = self._report()
        assert "step_cache" not in report.metrics()
        payload = report.to_dict()
        payload["step_cache"] = {"size": 10**6, "maxsize": 1, "hits": -1,
                                 "misses": -1, "evictions": -1}
        reloaded = ServingReport.from_dict(payload)
        assert reloaded.total_cycles == report.total_cycles
        del payload["step_cache"]  # pre-PR-10 payloads lack the key entirely
        assert ServingReport.from_dict(payload).to_dict() == report.to_dict()

    def test_counters_track_memoization(self):
        from repro.serve.scheduler import clear_step_cache, step_cache_stats

        clear_step_cache()
        _golden_report()
        first = step_cache_stats()
        assert first["misses"] > 0
        assert first["size"] == first["misses"] <= first["maxsize"]
        report = _golden_report()  # identical run -> pure cache hits
        second = step_cache_stats()
        assert second["misses"] == first["misses"]
        assert second["hits"] >= first["hits"] + report.distinct_steps
        assert report.to_dict()["step_cache"] == second


# ---------------------------------------------------------------------------
# Golden: a known arrival trace with pinned latency percentiles
# ---------------------------------------------------------------------------

def _golden_report() -> ServingReport:
    model = replace(scaled_config(QWEN3_30B_A3B, scale=64), name="golden-2e",
                    num_experts=2, experts_per_token=1)
    trace = trace_from_lists(
        arrivals=[0.0, 100.0, 5000.0, 20000.0],
        prompt_tokens=[32, 16, 64, 16],
        output_tokens=[3, 1, 4, 2],
        name="golden-trace")
    config = ServeConfig(model=model, batch_cap=2, num_layers=1,
                         kv_tile_rows=64, seed=7)
    return simulate_serving(config, trace, Schedule.dynamic())


#: recorded from the run above; every cycle-derived value is asserted at 2%
GOLDEN = {
    "total_cycles": 21301.5,
    "steps": 9,
    "distinct_steps": 6,
    "ttft_p50": 855.5,
    "ttft_p95": 1515.688,
    "ttft_mean": 1024.375,
    "tpot_p50": 656.219,
    "tpot_p95": 682.25,
    "e2e_p50": 1515.688,
    "e2e_p95": 3023.812,
    "goodput_rpmc": 187.78,
}


@pytest.fixture(scope="module")
def golden_report():
    return _golden_report()


class TestGoldenServingRun:
    def test_structure_is_exact(self, golden_report):
        report = golden_report
        assert report.num_requests == 4
        assert report.total_output_tokens == 10
        assert len(report.steps) == GOLDEN["steps"]
        assert report.distinct_steps == GOLDEN["distinct_steps"]
        # the late-arriving request waited: its prefill starts at its arrival
        assert report.steps[-2].start == pytest.approx(20000.0)

    def test_latency_percentiles_match_recorded_values(self, golden_report):
        metrics = golden_report.metrics()
        for key, expected in GOLDEN.items():
            if key in ("steps", "distinct_steps", "total_cycles"):
                continue
            assert metrics[key] == pytest.approx(expected, rel=REL_TOL), key

    def test_total_cycles_matches(self, golden_report):
        assert golden_report.total_cycles == pytest.approx(GOLDEN["total_cycles"],
                                                           rel=REL_TOL)

    def test_rerun_is_bit_identical(self, golden_report):
        assert _golden_report().to_dict() == golden_report.to_dict()

    def test_round_trip_preserves_golden_metrics(self, golden_report):
        restored = ServingReport.from_dict(golden_report.to_dict())
        assert restored.metrics() == golden_report.metrics()
