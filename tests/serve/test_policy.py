"""ServePolicy registries, round-trips, and default-policy bit-identity.

The golden values in TestDefaultPolicyBitIdentity were captured from the
scheduler *before* the policy refactor (PR 7 state) — the default
ServePolicy must reproduce them exactly, on both the unbounded and the
capacity-bounded (preemption/recompute) paths.
"""

import json

import pytest

from repro.core.errors import ConfigError
from repro.platforms import get_platform
from repro.schedules import Schedule
from repro.serve import (DEFAULT_POLICY, ServeConfig, ServePolicy,
                         ServeWorkload, admission_policy_names,
                         batching_policy_names, get_serve_policy,
                         policy_grid, poisson_trace, priority_policy_names,
                         register_admission_policy, register_batching_policy,
                         register_priority_policy, register_serve_policy,
                         resolve_serve_policy, serve_policy_names,
                         simulate_serving, trace_from_lists)
from repro.serve.policy import (AdmissionPolicy, BatchingPolicy,
                                PriorityPolicy)
from repro.serve.registry import (is_builtin, registered_names,
                                  resolve_registered)
from repro.workloads.configs import QWEN3_30B_A3B, cap_experts, scaled_config


def serve_model():
    return cap_experts(scaled_config(QWEN3_30B_A3B, scale=32), 16)


def unbounded_report(policy=None):
    model = serve_model()
    trace = poisson_trace(rate=300.0, num_requests=10, seed=0,
                          prompt_mean=48.0, prompt_max=192,
                          output_mean=6.0, output_max=24)
    config = ServeConfig(model=model, batch_cap=2, num_layers=2,
                         kv_tile_rows=64, seed=0, policy=policy)
    return simulate_serving(config, trace, Schedule.dynamic())


def bounded_report(policy=None):
    model = serve_model()
    trace = poisson_trace(rate=640.0, num_requests=12, seed=0,
                          prompt_mean=48.0, prompt_max=160,
                          output_mean=24.0, output_max=48)
    config = ServeConfig(model=model, batch_cap=4, num_layers=2,
                         kv_tile_rows=64, seed=0, policy=policy)
    return simulate_serving(config, trace, Schedule.dynamic(),
                            hardware=get_platform("sda-hbm-small"))


class TestDefaultPolicyBitIdentity:
    """The default ServePolicy pins the pre-refactor scheduler exactly."""

    # pre-refactor goldens (PR 7 scheduler, captured before the policy layer)
    UNBOUNDED_TOTAL = 64741.71875
    UNBOUNDED_FIRST_TOKENS = (
        2717.578125, 7298.984375, 12758.234375, 20760.515625, 26669.765625,
        32579.015625, 41639.515625, 44914.921875, 51716.078125, 56054.84375)
    UNBOUNDED_COMPLETIONS = (
        10450.234375, 23911.765625, 17485.109375, 29821.015625, 38881.515625,
        41639.515625, 48066.171875, 51716.078125, 61609.71875, 64741.71875)
    UNBOUNDED_STEP_TOKENS = (
        32, 1, 49, 2, 2, 17, 2, 2, 2, 49, 2, 2, 33, 2, 2, 33, 2, 2, 2, 2,
        33, 49, 2, 2, 65, 81, 2, 2, 2, 1, 1)

    BOUNDED_TOTAL = 234678.328125
    BOUNDED_FIRST_TOKENS = (
        2276.0, 7281.25, 7281.25, 7281.25, 37129.484375, 40428.546875,
        72763.53125, 105746.796875, 105746.796875, 145803.546875,
        148821.796875, 194957.078125)
    BOUNDED_COMPLETIONS = (
        69092.15625, 53200.296875, 37129.484375, 34296.0, 107875.421875,
        87560.78125, 100052.21875, 140968.421875, 145803.546875,
        198660.328125, 191046.921875, 234678.328125)

    def test_unbounded_run_matches_golden(self):
        report = unbounded_report()
        assert report.total_cycles == self.UNBOUNDED_TOTAL
        assert len(report.steps) == 31
        assert report.distinct_steps == 10
        assert tuple(r.first_token for r in report.requests) == \
            self.UNBOUNDED_FIRST_TOKENS
        assert tuple(r.completion for r in report.requests) == \
            self.UNBOUNDED_COMPLETIONS
        assert tuple(s.tokens for s in report.steps) == \
            self.UNBOUNDED_STEP_TOKENS
        assert report.steps[0].start == 0.0
        assert report.steps[0].cycles == 2717.578125

    def test_bounded_preemption_run_matches_golden(self):
        report = bounded_report()
        assert report.total_cycles == self.BOUNDED_TOTAL
        assert len(report.steps) == 118
        assert report.distinct_steps == 17
        assert report.memory.preemptions == 2
        assert report.memory.admission_stalls == 74
        assert report.memory.recompute_tokens == 11
        assert tuple(r.first_token for r in report.requests) == \
            self.BOUNDED_FIRST_TOKENS
        assert tuple(r.completion for r in report.requests) == \
            self.BOUNDED_COMPLETIONS

    def test_explicit_default_policy_is_the_pinned_path(self):
        for policy in (ServePolicy(), get_serve_policy("default"),
                       resolve_serve_policy("default")):
            report = unbounded_report(policy)
            assert report.total_cycles == self.UNBOUNDED_TOTAL


class TestRegistries:
    def test_builtin_names(self):
        assert admission_policy_names() == \
            ["fifo", "priority-class", "slo-deadline"]
        assert batching_policy_names() == \
            ["chunked-prefill", "orca-continuous", "prefill-decode"]
        assert priority_policy_names() == \
            ["interactive-first", "short-prompt-first", "trace"]
        assert serve_policy_names() == \
            ["chunked-prefill", "default", "prefill-decode", "priority",
             "slo-preempt"]

    def test_unknown_names_raise_listing_configerror(self):
        with pytest.raises(ConfigError, match="registered:.*fifo"):
            ServePolicy(admission="nope")
        with pytest.raises(ConfigError, match="registered:.*orca-continuous"):
            ServePolicy(batching="nope")
        with pytest.raises(ConfigError, match="registered:.*trace"):
            ServePolicy(priority="nope")
        with pytest.raises(ConfigError, match="registered:.*default"):
            get_serve_policy("nope")
        with pytest.raises(ConfigError, match="attached:"):
            resolve_registered("no-such-kind", "x")

    def test_shared_resolution_covers_eviction_and_routing(self):
        from repro.serve import get_eviction_policy, get_routing_policy
        with pytest.raises(ConfigError, match="registered:.*evict-lru"):
            get_eviction_policy("nope")
        with pytest.raises(ConfigError, match="registered:.*round-robin"):
            get_routing_policy("nope")
        assert "evict-lru" in registered_names("eviction")
        assert "round-robin" in registered_names("routing")
        assert is_builtin("eviction", "evict-lru")
        assert is_builtin("routing", "round-robin")

    def test_knob_validation(self):
        with pytest.raises(ConfigError, match="prefill_chunk"):
            ServePolicy(prefill_chunk=0)
        with pytest.raises(ConfigError, match="class_slos"):
            ServePolicy(class_slos=(0.0,))

    def test_resolve_serve_policy_paths(self):
        assert resolve_serve_policy(None) is DEFAULT_POLICY
        assert resolve_serve_policy("chunked-prefill") == \
            ServePolicy(batching="chunked-prefill")
        spec = ServePolicy(prefill_chunk=16, batching="chunked-prefill")
        assert resolve_serve_policy(spec) is spec
        assert resolve_serve_policy(spec.to_dict()) == spec
        with pytest.raises(ConfigError, match="cannot resolve"):
            resolve_serve_policy(42)

    def test_policy_grid(self):
        grid = policy_grid()
        assert sorted(grid) == serve_policy_names()
        sub = policy_grid("default", "slo-preempt")
        assert list(sub) == ["default", "slo-preempt"]
        assert sub["slo-preempt"].admission == "slo-deadline"
        custom = policy_grid(ServePolicy(batching="prefill-decode",
                                         priority="short-prompt-first"))
        assert list(custom) == ["fifo/prefill-decode/short-prompt-first"]

    def test_labels(self):
        assert ServePolicy().label == "default"
        assert ServePolicy(batching="chunked-prefill").label == "chunked-prefill"
        assert ServePolicy(admission="priority-class").label == \
            "priority-class/orca-continuous/trace"


class TestSerialization:
    def test_serve_policy_round_trip(self):
        for name in serve_policy_names():
            policy = get_serve_policy(name)
            rebuilt = ServePolicy.from_dict(
                json.loads(json.dumps(policy.to_dict())))
            assert rebuilt == policy
        spec = ServePolicy(batching="chunked-prefill", prefill_chunk=16,
                           admission="slo-deadline",
                           class_slos=(10_000.0, 90_000.0))
        assert ServePolicy.from_dict(spec.to_dict()) == spec

    def test_custom_policy_rejects_serialization(self):
        @register_admission_policy("test-custom-admission")
        class CustomAdmission(AdmissionPolicy):
            def select(self, waiting, now):
                return 0 if waiting else None

        try:
            spec = ServePolicy(admission="test-custom-admission")
            with pytest.raises(ConfigError,
                               match="custom-registered admission"):
                spec.to_dict()
            assert not is_builtin("admission", "test-custom-admission")
        finally:
            from repro.serve.policy import ADMISSION_POLICIES
            del ADMISSION_POLICIES["test-custom-admission"]

    def test_from_dict_unknown_name_raises(self):
        with pytest.raises(ConfigError, match="registered:"):
            ServePolicy.from_dict({"admission": "never-registered"})

    def test_serve_config_carries_policy(self):
        config = ServeConfig(model=serve_model(),
                             policy=ServePolicy(batching="chunked-prefill"))
        assert config.policy.batching == "chunked-prefill"
        assert ServeConfig(model=serve_model()).policy is DEFAULT_POLICY
        with pytest.raises(ConfigError, match="resolve_serve_policy"):
            ServeConfig(model=serve_model(), policy="chunked-prefill")

    def test_duplicate_registrations_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_admission_policy("fifo")(AdmissionPolicy)
        with pytest.raises(ConfigError, match="already registered"):
            register_batching_policy("orca-continuous")(BatchingPolicy)
        with pytest.raises(ConfigError, match="already registered"):
            register_priority_policy("trace")(PriorityPolicy)
        with pytest.raises(ConfigError, match="already registered"):
            register_serve_policy("default", ServePolicy())


class TestPolicyBehavior:
    def test_chunked_prefill_spreads_context(self):
        report = unbounded_report(ServePolicy(batching="chunked-prefill",
                                              prefill_chunk=16))
        # the first prompt (32 tokens) needs two 16-token chunks before its
        # first output token, so step 0 processes exactly the chunk budget
        assert report.steps[0].tokens == 16
        assert report.requests[0].first_token > report.steps[0].cycles
        assert report.policy["batching"] == "chunked-prefill"
        assert report.num_requests == 10

    def test_prefill_decode_disaggregates_steps(self):
        report = unbounded_report(ServePolicy(batching="prefill-decode"))
        assert report.num_requests == 10
        # no step mixes prefill context with decode-only requests: a step
        # either prefills (tokens == sum of contexts) or decodes (1/request)
        for step in report.steps:
            assert step.prefills == 0 or step.prefills * 1 >= 1
            if step.prefills == 0:
                assert step.tokens <= step.running

    def test_priority_policy_reorders_queue(self):
        # two long-output requests arrive first and hog the cap-1 batch;
        # under FIFO the late interactive request waits for the queue head,
        # under priority-class admission it overtakes the queued batch job
        arrivals = [0.0, 1.0, 2.0]
        prompts = [64, 64, 16]
        outputs = [32, 32, 2]
        trace = trace_from_lists(arrivals, prompts, outputs, name="prio")
        config = ServeConfig(model=serve_model(), batch_cap=1, num_layers=2)
        fifo = simulate_serving(config, trace, Schedule.dynamic())
        prio = simulate_serving(
            ServeConfig(model=serve_model(), batch_cap=1, num_layers=2,
                        policy=ServePolicy(admission="priority-class",
                                           priority="interactive-first")),
            trace, Schedule.dynamic())
        fifo_ttft = {r.request_id: r.ttft for r in fifo.requests}
        prio_ttft = {r.request_id: r.ttft for r in prio.requests}
        assert prio_ttft[2] < fifo_ttft[2]
        assert {r.request_id: r.priority for r in prio.requests} == \
            {0: 1, 1: 1, 2: 0}

    def test_slo_deadline_preempts_runner(self):
        # one long batch job occupies the cap-1 batch; an interactive request
        # with a tight deadline arrives later and must preempt it
        trace = trace_from_lists([0.0, 100.0], [64, 16], [48, 2], name="slo")
        policy = ServePolicy(admission="slo-deadline",
                             priority="interactive-first",
                             class_slos=(20_000.0, 10_000_000.0))
        report = simulate_serving(
            ServeConfig(model=serve_model(), batch_cap=1, num_layers=2,
                        policy=policy),
            trace, Schedule.dynamic())
        ttft = {r.request_id: r.ttft for r in report.requests}
        assert ttft[1] <= 20_000.0
        assert report.num_requests == 2

    def test_trace_priorities_flow_through(self):
        trace = trace_from_lists([0.0, 1.0], [16, 16], [2, 2],
                                 priorities=[3, 1], name="classes")
        report = simulate_serving(
            ServeConfig(model=serve_model(), batch_cap=2, num_layers=2),
            trace, Schedule.dynamic())
        assert {r.request_id: r.priority for r in report.requests} == \
            {0: 3, 1: 1}
        breakdown = report.per_priority()
        assert sorted(breakdown) == [1, 3]
        assert breakdown[1]["requests"] == 1
        assert breakdown[1]["ttft"]["p99"] > 0
        assert report.priority_classes() == (1, 3)
        attainment = report.slo_attainment_by_priority(1e12)
        assert attainment == {1: 1.0, 3: 1.0}

    def test_bounded_platform_with_chunked_prefill_terminates(self):
        report = bounded_report(ServePolicy(batching="chunked-prefill",
                                            prefill_chunk=32))
        assert report.num_requests == 12
        assert report.memory is not None

    def test_bounded_platform_with_slo_preempt_terminates(self):
        report = bounded_report(get_serve_policy("slo-preempt"))
        assert report.num_requests == 12
        assert report.memory.preemptions >= 0

    def test_policy_on_report_round_trips(self):
        report = unbounded_report(get_serve_policy("priority"))
        from repro.serve import ServingReport
        rebuilt = ServingReport.from_dict(
            json.loads(json.dumps(report.to_dict())))
        assert rebuilt.to_dict() == report.to_dict()
        assert rebuilt.policy == report.policy
        assert rebuilt.policy["admission"] == "priority-class"


class TestServeWorkloadPolicy:
    def test_workload_threads_policy_and_labels(self):
        model = serve_model()
        trace = poisson_trace(rate=300.0, num_requests=6, seed=0,
                              prompt_mean=48.0, prompt_max=192,
                              output_mean=6.0, output_max=24)
        default = ServeWorkload(model=model, trace=trace, batch_cap=2)
        chunked = ServeWorkload(model=model, trace=trace, batch_cap=2,
                                policy=ServePolicy(batching="chunked-prefill"))
        assert default.label() == f"serve:{trace.name}:cap2"
        assert chunked.label() == f"serve:{trace.name}:cap2:chunked-prefill"
        base = default.run(Schedule.dynamic())
        alt = chunked.run(Schedule.dynamic())
        assert base["cycles"] != alt["cycles"]

    def test_policy_changes_sweep_cache_identity(self):
        from repro.sweep.cache import canonicalize, stable_hash
        model = serve_model()
        trace = poisson_trace(rate=300.0, num_requests=4, seed=0)
        a = ServeWorkload(model=model, trace=trace)
        b = ServeWorkload(model=model, trace=trace,
                          policy=ServePolicy(batching="chunked-prefill"))
        c = ServeWorkload(model=model, trace=trace,
                          policy=ServePolicy(batching="chunked-prefill",
                                             prefill_chunk=16))
        keys = {stable_hash(canonicalize(w)) for w in (a, b, c)}
        assert len(keys) == 3
