"""Streaming-analytics tests: sketch error bounds, exact aggregates, memory.

The contract under test (:mod:`repro.serve.streaming`):

* ``QuantileSketch.quantile(q)`` is within ``rel_accuracy`` *relative* error
  of the exact nearest-rank percentile of the observed sample — under
  constant, bimodal and heavy-tailed adversarial inputs,
* counts, sums, extremes and the windowed queue-depth timeline are **exact**,
  so a streaming-mode serving run matches its full-mode twin bit-for-bit on
  every non-percentile aggregate,
* the report memory of a streaming run is O(windows + sketch buckets),
  independent of the request count — pinned by a 100k-request run under
  ``tracemalloc``.
"""

import json
import tracemalloc

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.schedules import Schedule
from repro.serve import (QuantileSketch, ServeConfig, ServingReport,
                         StreamingStats, WindowedTimeline, simulate_serving,
                         trace_from_lists)
from repro.serve.generators import generate_trace
from repro.serve.library import _serve_model
from repro.serve.report import StepSample, percentile
from repro.serve.streaming import make_streaming_stats, resolve_report_mode

QS = (50, 90, 95, 99)


def exact_nearest_rank(values, q):
    return percentile(list(values), q)


def assert_within_bound(sketch, values, rel=None):
    rel = sketch.rel_accuracy if rel is None else rel
    for q in QS:
        exact = exact_nearest_rank(values, q)
        estimate = sketch.quantile(q)
        assert estimate == pytest.approx(exact, rel=rel), (q, exact, estimate)


def fill(values, rel_accuracy=0.01):
    sketch = QuantileSketch(rel_accuracy=rel_accuracy)
    for value in values:
        sketch.observe(value)
    return sketch


class TestQuantileSketchErrorBound:
    def test_constant_sample_is_exact(self):
        sketch = fill([42.5] * 1000)
        for q in QS:
            assert sketch.quantile(q) == 42.5  # clamped to exact min/max

    def test_bimodal_sample(self):
        values = [10.0] * 500 + [10_000.0] * 500
        sketch = fill(values)
        assert_within_bound(sketch, values)
        # the p50/p90 straddle the two modes: each estimate must sit on the
        # correct mode, not between them
        assert sketch.quantile(40) == pytest.approx(10.0, rel=0.01)
        assert sketch.quantile(60) == pytest.approx(10_000.0, rel=0.01)

    def test_heavy_tailed_lognormal_sample(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=8.0, sigma=2.5, size=20_000).tolist()
        assert_within_bound(fill(values), values)

    def test_heavy_tailed_pareto_sample(self):
        rng = np.random.default_rng(1)
        values = ((rng.pareto(1.3, size=20_000) + 1.0) * 50.0).tolist()
        assert_within_bound(fill(values), values)

    def test_looser_accuracy_still_bounded(self):
        rng = np.random.default_rng(2)
        values = rng.lognormal(mean=6.0, sigma=1.5, size=5_000).tolist()
        assert_within_bound(fill(values, rel_accuracy=0.05), values)

    def test_zero_values_have_their_own_bucket(self):
        values = [0.0] * 90 + [100.0] * 10
        sketch = fill(values)
        assert sketch.quantile(50) == 0.0
        assert sketch.quantile(99) == pytest.approx(100.0, rel=0.01)

    def test_exact_counters(self):
        values = [3.0, 0.0, 7.5, 1.25]
        sketch = fill(values)
        assert sketch.count == 4
        assert sketch.min == 0.0
        assert sketch.max == 7.5
        assert sketch.sum == pytest.approx(sum(values))
        assert sketch.mean == pytest.approx(sum(values) / 4)

    def test_memory_is_log_spaced(self):
        # five orders of magnitude at 1% accuracy: a few hundred buckets,
        # not one per distinct value
        sketch = fill([float(v) for v in range(1, 100_000)])
        assert sketch.num_buckets < 1000

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigError):
            QuantileSketch(rel_accuracy=0.0)
        with pytest.raises(ConfigError):
            QuantileSketch(rel_accuracy=1.0)
        sketch = QuantileSketch()
        with pytest.raises(ConfigError):
            sketch.observe(-1.0)
        with pytest.raises(ConfigError):
            sketch.quantile(50)  # empty
        sketch.observe(1.0)
        with pytest.raises(ConfigError):
            sketch.quantile(101)


class TestQuantileSketchCountLe:
    def test_exact_away_from_bucket_boundaries(self):
        sketch = fill([10.0] * 30 + [1_000.0] * 70)
        assert sketch.count_le(100.0) == 30
        assert sketch.count_le(5.0) == 0
        assert sketch.count_le(10_000.0) == 100

    def test_zero_threshold_counts_zero_bucket_only(self):
        sketch = fill([0.0, 0.0, 5.0])
        assert sketch.count_le(0.0) == 2
        assert sketch.count_le(-1.0) == 0


class TestQuantileSketchMergeAndSerialization:
    def test_merge_equals_single_pass(self):
        rng = np.random.default_rng(3)
        values = rng.lognormal(mean=7.0, sigma=2.0, size=4_000).tolist()
        whole = fill(values)
        left, right = fill(values[:1500]), fill(values[1500:])
        left.merge(right)
        merged, single = left.to_dict(), whole.to_dict()
        # sum is a float accumulator: merging reassociates the additions, so
        # it agrees to rounding only; every count and bucket is integer-exact
        assert merged.pop("sum") == pytest.approx(single.pop("sum"), rel=1e-12)
        assert merged == single
        for q in QS:
            assert left.quantile(q) == whole.quantile(q)

    def test_merge_rejects_mismatched_accuracy(self):
        with pytest.raises(ConfigError):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))

    def test_dict_round_trip_is_exact(self):
        sketch = fill([1.0, 0.0, 250.0, 3.5e6])
        clone = QuantileSketch.from_dict(sketch.to_dict())
        assert clone.to_dict() == sketch.to_dict()
        for q in QS:
            assert clone.quantile(q) == sketch.quantile(q)
        # the payload is JSON-able as-is
        json.dumps(sketch.to_dict())

    def test_empty_sketch_round_trip(self):
        clone = QuantileSketch.from_dict(QuantileSketch().to_dict())
        assert clone.count == 0
        assert clone.summarize()["count"] == 0.0


def _step(start, cycles=100.0, running=2, queued=1, tokens=4, prefills=1,
          preemptions=0):
    return StepSample(start=start, cycles=cycles, running=running,
                      queued=queued, tokens=tokens, prefills=prefills,
                      preemptions=preemptions)


class TestWindowedTimeline:
    def test_window_assignment_and_counts(self):
        timeline = WindowedTimeline(window_cycles=1000.0)
        timeline.observe(_step(0.0))
        timeline.observe(_step(999.9))
        timeline.observe(_step(1000.0))
        assert timeline.num_windows == 2
        assert timeline.num_steps == 3
        assert [index for index, _ in timeline.windows()] == [0, 1]

    def test_queue_depth_matches_flat_lists_exactly(self):
        steps = [_step(i * 137.0, queued=i % 5, running=(i * 3) % 7 + 1)
                 for i in range(200)]
        timeline = WindowedTimeline(window_cycles=1000.0)
        for sample in steps:
            timeline.observe(sample)
        depth = timeline.queue_depth()
        queued = [s.queued for s in steps]
        running = [s.running for s in steps]
        assert depth["queued_mean"] == float(sum(queued) / len(queued))
        assert depth["queued_max"] == float(max(queued))
        assert depth["running_mean"] == float(sum(running) / len(running))
        assert depth["running_max"] == float(max(running))

    def test_memory_is_bounded_by_makespan_not_steps(self):
        timeline = WindowedTimeline(window_cycles=1000.0)
        for i in range(10_000):
            timeline.observe(_step(float(i % 3000)))
        assert timeline.num_windows == 3
        assert timeline.num_steps == 10_000

    def test_merge_and_round_trip(self):
        left = WindowedTimeline(window_cycles=500.0)
        right = WindowedTimeline(window_cycles=500.0)
        for i in range(40):
            (left if i % 2 else right).observe(_step(i * 100.0, queued=i))
        whole = WindowedTimeline(window_cycles=500.0)
        for i in range(40):
            whole.observe(_step(i * 100.0, queued=i))
        left.merge(right)
        assert left.to_dict() == whole.to_dict()
        clone = WindowedTimeline.from_dict(whole.to_dict())
        assert clone.to_dict() == whole.to_dict()
        with pytest.raises(ConfigError):
            left.merge(WindowedTimeline(window_cycles=250.0))

    def test_rows_are_flat_and_ordered(self):
        timeline = WindowedTimeline(window_cycles=1000.0)
        timeline.observe(_step(2500.0))
        timeline.observe(_step(100.0))
        rows = timeline.rows()
        assert [row["window"] for row in rows] == [0, 2]
        assert rows[1]["start"] == 2000.0


class _FakeRecord:
    def __init__(self, ttft, tpot, e2e, output_tokens=4, priority=0):
        self.ttft, self.tpot, self.e2e = ttft, tpot, e2e
        self.output_tokens, self.priority = output_tokens, priority


class TestStreamingStats:
    def _stats(self, records, steps=()):
        stats = make_streaming_stats(rel_accuracy=0.01, window_cycles=1000.0)
        for record in records:
            stats.observe_request(record)
        for sample in steps:
            stats.observe_step(sample)
        return stats

    def test_counters_and_priority_classes(self):
        records = [_FakeRecord(10.0, 5.0, 50.0, output_tokens=3, priority=p)
                   for p in (0, 1, 0, 2)]
        stats = self._stats(records, steps=[_step(0.0, cycles=250.0)])
        assert stats.num_requests == 4
        assert stats.total_output_tokens == 12
        assert stats.num_steps == 1
        assert stats.busy_cycles == 250.0
        assert stats.priority_classes() == (0, 1, 2)
        breakdown = stats.per_priority()
        assert breakdown[0]["requests"] == 2
        assert breakdown[0]["ttft"]["count"] == 2.0

    def test_single_token_requests_skip_tpot(self):
        stats = self._stats([_FakeRecord(10.0, 0.0, 10.0, output_tokens=1)])
        assert stats.ttft.count == 1
        assert stats.tpot.count == 0

    def test_slo_attainment(self):
        records = [_FakeRecord(float(t), 1.0, float(t), priority=i % 2)
                   for i, t in enumerate((10, 30_000, 20, 40_000))]
        stats = self._stats(records)
        assert stats.slo_attainment(100.0) == 0.5
        # class 0 holds the two fast requests, class 1 the two slow ones
        by_priority = stats.slo_attainment_by_priority(100.0)
        assert by_priority == {0: 1.0, 1: 0.0}
        assert StreamingStats(rel_accuracy=0.01).slo_attainment(100.0) == 0.0

    def test_merge_equals_single_pass_and_round_trips(self):
        records = [_FakeRecord(float(i + 1), float(i % 7 + 1),
                               float(2 * i + 2), priority=i % 3)
                   for i in range(100)]
        steps = [_step(i * 333.0, cycles=float(i + 1)) for i in range(50)]
        whole = self._stats(records, steps)
        left = self._stats(records[:40], steps[:20])
        right = self._stats(records[40:], steps[20:])
        left.merge(right)
        assert left.to_dict() == whole.to_dict()
        clone = StreamingStats.from_dict(whole.to_dict())
        assert clone.to_dict() == whole.to_dict()
        json.dumps(whole.to_dict())


class TestResolveReportMode:
    def test_accepts_known_modes(self):
        assert resolve_report_mode("full") == "full"
        assert resolve_report_mode("streaming") == "streaming"

    def test_rejects_unknown(self):
        with pytest.raises(ConfigError):
            resolve_report_mode("compact")


@pytest.fixture(scope="module")
def paired_reports():
    """The same heavy-tailed trace served in full and streaming modes."""
    model = _serve_model(32)
    trace = generate_trace("heavy-tail", rate=400.0, num_requests=64, seed=5,
                           prompt_mean=48.0, prompt_max=192,
                           output_mean=4.0, output_max=8)
    schedule = Schedule.dynamic()
    reports = {}
    for mode in ("full", "streaming"):
        config = ServeConfig(model=model, batch_cap=4, num_layers=1,
                             report_mode=mode)
        reports[mode] = simulate_serving(config, trace, schedule)
    return reports["full"], reports["streaming"]


class TestStreamingServeEquivalence:
    def test_exact_aggregates_match(self, paired_reports):
        full, streaming = paired_reports
        assert streaming.report_mode == "streaming"
        assert streaming.num_requests == full.num_requests
        assert streaming.num_steps == full.num_steps
        assert streaming.total_output_tokens == full.total_output_tokens
        assert streaming.total_cycles == full.total_cycles
        assert streaming.queue_depth() == full.queue_depth()
        assert streaming.goodput == full.goodput

    def test_percentiles_within_sketch_bound(self, paired_reports):
        full, streaming = paired_reports
        rel = streaming.streaming.rel_accuracy
        for metric in ("ttft", "tpot", "e2e"):
            exact = getattr(full, metric)()
            estimate = getattr(streaming, metric)()
            assert estimate["count"] == exact["count"]
            assert estimate["max"] == exact["max"]
            assert estimate["mean"] == pytest.approx(exact["mean"], rel=1e-9)
            for q in QS:
                assert estimate[f"p{q}"] == pytest.approx(
                    exact[f"p{q}"], rel=rel), (metric, q)

    def test_slo_attainment_matches_away_from_boundary(self, paired_reports):
        full, streaming = paired_reports
        # a threshold far from any observed TTFT: count_le is exact there
        slo = full.ttft()["p90"] * 1.5
        assert streaming.slo_attainment(slo) == full.slo_attainment(slo)

    def test_streaming_report_round_trips(self, paired_reports):
        _, streaming = paired_reports
        clone = ServingReport.from_dict(streaming.to_dict())
        assert clone.to_dict() == streaming.to_dict()
        assert clone.ttft() == streaming.ttft()
        assert clone.queue_depth() == streaming.queue_depth()

    def test_full_mode_payload_has_no_streaming_key(self, paired_reports):
        full, streaming = paired_reports
        assert "streaming" not in full.to_dict()
        assert "streaming" in streaming.to_dict()
        # streaming mode drops the per-request / per-step payloads entirely
        payload = streaming.to_dict()
        assert payload["requests"] == []
        assert payload["steps"] == []


class TestStreamingMemoryCeiling:
    def test_100k_requests_report_in_constant_memory(self):
        """The acceptance bound: a >= 100k-request streaming run whose peak
        traced allocation is O(windows + sketch buckets), megabytes below the
        O(requests) a full-mode record list would allocate."""
        n = 100_000
        batch = 8
        gap = 3000.0  # one batch-sized burst per gap keeps the queue tiny
        arrivals = [float(int(i // batch) * gap) for i in range(n)]
        trace = trace_from_lists(arrivals, [16] * n, [1] * n, name="const-100k")
        config = ServeConfig(model=_serve_model(32), batch_cap=batch,
                             num_layers=1, report_mode="streaming")
        schedule = Schedule.dynamic()

        # warm the step memo so the traced run measures the serving loop and
        # the streaming report, not one-time step-cost simulation
        simulate_serving(config, trace, schedule)

        tracemalloc.start()
        report = simulate_serving(config, trace, schedule)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert report.num_requests == n
        assert report.streaming is not None
        # O(windows + buckets): both stay small however many requests ran
        assert report.streaming.timeline.num_windows < 1000
        assert report.streaming.ttft.num_buckets < 1000
        # a full-mode report would hold 100k RequestRecords (+ steps): tens
        # of MB; the streaming run's whole working set stays under 2 MB
        assert peak < 2 * 1024 * 1024, f"peak {peak / 1e6:.2f} MB"
