"""Edge cases of the ``repro.bench`` comparison gate.

The compare mode is a CI gate: its edge behaviour decides whether a broken
report silently passes or a healthy run spuriously fails.  These tests pin
the corners: empty suites, schema-version mismatches, reports without
calibration probes, and ratios landing exactly on the regression threshold.
"""

import json

import pytest

from repro.bench.report import (SCHEMA_VERSION, compare_reports, format_comparison,
                                load_report)


def report(suites, calibration=None, schema=SCHEMA_VERSION):
    doc = {"schema": schema, "scale": "smoke", "suites": suites}
    if calibration is not None:
        doc["calibration_s"] = calibration
    return doc


def suite(wall, calibration=None, **extra):
    payload = {"wall_time_s": wall, **extra}
    if calibration is not None:
        payload["calibration_s"] = calibration
    return payload


class TestEmptySuites:
    def test_both_empty_is_ok(self):
        result = compare_reports(report({}), report({}))
        assert result.ok
        assert result.cases == []
        assert "OK" in format_comparison(result)

    def test_empty_baseline_makes_current_suites_informational(self):
        result = compare_reports(report({}), report({"a": suite(1.0)}))
        assert result.ok
        assert [c.note for c in result.cases] == ["new suite (no baseline)"]

    def test_empty_current_flags_every_baseline_suite(self):
        result = compare_reports(report({"a": suite(1.0), "b": suite(2.0)}),
                                 report({}))
        assert not result.ok
        assert {c.name for c in result.regressions} == {"a", "b"}

    def test_suite_without_the_metric_is_informational(self):
        result = compare_reports(report({"a": suite(1.0)}),
                                 report({"a": {"points": 3}}))
        assert result.ok
        assert "unavailable" in result.cases[0].note


class TestSchemaMismatch:
    def test_load_rejects_future_schema(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps(report({}, schema="repro.bench/v999")))
        with pytest.raises(ValueError, match="unsupported bench report schema"):
            load_report(str(path))

    def test_load_rejects_missing_schema(self, tmp_path):
        path = tmp_path / "none.json"
        path.write_text(json.dumps({"suites": {}}))
        with pytest.raises(ValueError, match="unsupported bench report schema"):
            load_report(str(path))

    def test_load_rejects_missing_suites(self, tmp_path):
        path = tmp_path / "nosuites.json"
        path.write_text(json.dumps({"schema": SCHEMA_VERSION}))
        with pytest.raises(ValueError, match="malformed bench report"):
            load_report(str(path))


class TestMissingCalibration:
    def test_no_probes_disables_normalization(self):
        result = compare_reports(report({"a": suite(1.0)}),
                                 report({"a": suite(1.1)}))
        assert not result.normalized
        assert result.cases[0].ratio == pytest.approx(1.1)

    def test_one_sided_probe_disables_normalization(self):
        result = compare_reports(report({"a": suite(1.0)}, calibration=0.01),
                                 report({"a": suite(1.1)}))
        assert not result.normalized

    def test_case_probe_preferred_over_report_probe(self):
        # report-level probes say the machines are equal, the case-level
        # probes say the current machine is 2x slower: the per-case factor
        # must win, halving the normalized ratio and clearing the regression
        base = report({"a": suite(1.0, calibration=0.01)}, calibration=0.01)
        cur = report({"a": suite(1.6, calibration=0.02)}, calibration=0.01)
        result = compare_reports(base, cur)
        assert result.normalized
        assert result.cases[0].ratio == pytest.approx(0.8)
        assert result.ok

    def test_missing_case_probes_fall_back_to_report_probe(self):
        base = report({"a": suite(1.0)}, calibration=0.01)
        cur = report({"a": suite(1.6)}, calibration=0.02)
        result = compare_reports(base, cur)
        assert result.normalized
        assert result.cases[0].ratio == pytest.approx(0.8)

    def test_mixed_probes_labeled_partially_normalized(self):
        # no report-level probes; only suite "a" carries case-level probes, so
        # "b" compares raw — the table must say so instead of claiming
        # normalization for everything
        base = report({"a": suite(1.0, calibration=0.01), "b": suite(1.0)})
        cur = report({"a": suite(1.1, calibration=0.01), "b": suite(1.1)})
        result = compare_reports(base, cur)
        by_name = {c.name: c for c in result.cases}
        assert by_name["a"].normalized and not by_name["b"].normalized
        text = format_comparison(result)
        assert "partially machine-normalized" in text
        assert "(raw)" in text.split("\n")[2]  # the "b" row carries the marker


class TestExactlyAtThreshold:
    def test_ratio_exactly_at_threshold_passes(self):
        # 20% slower with a 20% threshold is *not* a regression (strict >)
        result = compare_reports(report({"a": suite(1.0)}),
                                 report({"a": suite(1.2)}), threshold=0.2)
        assert result.ok
        assert result.cases[0].ratio == pytest.approx(1.2)

    def test_just_over_threshold_fails(self):
        result = compare_reports(report({"a": suite(1.0)}),
                                 report({"a": suite(1.21)}), threshold=0.2)
        assert not result.ok

    def test_at_threshold_after_normalization_passes(self):
        # raw ratio 1.44 but the current machine measures 1.2x slower, so the
        # normalized ratio lands exactly on the threshold — still a pass
        base = report({"a": suite(1.0, calibration=0.010)})
        cur = report({"a": suite(1.44, calibration=0.012)})
        result = compare_reports(base, cur, threshold=0.2)
        assert result.cases[0].ratio == pytest.approx(1.2)
        assert result.ok

    def test_min_delta_exactly_at_floor_is_not_suppressed(self):
        # a 10ms delta with a 10ms floor: delta < floor is False, so the
        # regression stands
        result = compare_reports(report({"a": suite(0.010)}),
                                 report({"a": suite(0.020)}),
                                 threshold=0.2, min_delta_s=0.010)
        assert not result.ok

    def test_delta_just_under_floor_is_suppressed(self):
        result = compare_reports(report({"a": suite(0.010)}),
                                 report({"a": suite(0.0199)}),
                                 threshold=0.2, min_delta_s=0.010)
        assert result.ok

    def test_throughput_metric_has_no_delta_floor(self):
        # cycles_per_second regression: direction inverted, floor not applied
        base = report({"a": {"cycles_per_second": 1000.0}})
        cur = report({"a": {"cycles_per_second": 500.0}})
        result = compare_reports(base, cur, metric="cycles_per_second",
                                 threshold=0.2, min_delta_s=1e9)
        assert not result.ok
        assert result.cases[0].ratio == pytest.approx(2.0)
