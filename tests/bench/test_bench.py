"""Tests for the repro.bench performance-tracking subsystem."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import (SCHEMA_VERSION, bench_cases, build_report, compare_reports,
                         get_case, load_report, run_case, write_report)
from repro.bench.report import format_comparison
from repro.core.errors import ConfigError

REPO_ROOT = Path(__file__).resolve().parents[2]


def _report(suites, calibration=0.01):
    return {"schema": SCHEMA_VERSION, "calibration_s": calibration,
            "suites": suites}


class TestSuiteRegistry:
    def test_default_suite_is_registered(self):
        names = [case.name for case in bench_cases()]
        assert "figure15-batch-sweep" in names
        assert len(names) >= 5

    def test_every_case_builds_a_smoke_scenario(self):
        for case in bench_cases():
            scenario = case.scenario("smoke")
            assert len(scenario) > 0, case.name

    def test_unknown_case_and_scale_rejected(self):
        with pytest.raises(ConfigError):
            get_case("no-such-case")
        with pytest.raises(ConfigError):
            get_case("figure15-batch-sweep").scenario("galactic")


class TestRunCase:
    def test_measures_wall_time_cycles_and_cache_stats(self):
        result = run_case(get_case("dense-ffn"), scale="smoke", repeat=1,
                          cache_stats=True)
        assert result.wall_time_s > 0
        assert result.sim_cycles > 0
        assert result.cycles_per_second > 0
        assert result.points > 0
        assert result.simulated == result.points  # uncached timing runs
        assert result.cache_hits == 0
        # the warm cache run must satisfy every point from the cache
        assert result.cache_warm_hits == result.points
        assert result.calibration_s and result.calibration_s > 0
        payload = result.to_dict()
        assert payload["wall_time_s"] == result.wall_time_s
        assert payload["cache_warm_hits"] == result.points


class TestReportRoundTrip:
    def test_build_write_load(self, tmp_path):
        result = run_case(get_case("dense-ffn"), scale="smoke", repeat=1,
                          cache_stats=False)
        report = build_report([result], scale="smoke", repeat=1, jobs=1)
        assert report["schema"] == SCHEMA_VERSION
        path = tmp_path / "bench.json"
        write_report(str(path), report)
        loaded = load_report(str(path))
        assert loaded["suites"]["dense-ffn"]["wall_time_s"] == result.wall_time_s

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro.bench/v999", "suites": {}}))
        with pytest.raises(ValueError):
            load_report(str(path))


class TestCompare:
    def test_regression_detected(self):
        base = _report({"s": {"wall_time_s": 1.0}})
        cur = _report({"s": {"wall_time_s": 1.5}})
        result = compare_reports(base, cur, threshold=0.2)
        assert not result.ok
        assert result.cases[0].regressed
        assert "REGRESSED" in format_comparison(result)

    def test_improvement_and_within_threshold_pass(self):
        base = _report({"fast": {"wall_time_s": 1.0}, "same": {"wall_time_s": 1.0}})
        cur = _report({"fast": {"wall_time_s": 0.5}, "same": {"wall_time_s": 1.1}})
        assert compare_reports(base, cur, threshold=0.2).ok

    def test_missing_suite_is_a_regression(self):
        base = _report({"s": {"wall_time_s": 1.0}})
        cur = _report({})
        result = compare_reports(base, cur)
        assert not result.ok
        assert result.cases[0].note == "missing from current report"

    def test_new_suite_is_informational(self):
        base = _report({})
        cur = _report({"new": {"wall_time_s": 1.0}})
        result = compare_reports(base, cur)
        assert result.ok
        assert result.cases[0].note == "new suite (no baseline)"

    def test_calibration_normalization_absorbs_machine_speed(self):
        # current machine is 2x slower overall (calibration doubled): a 2x
        # wall-time growth is not a regression once normalized
        base = _report({"s": {"wall_time_s": 1.0, "calibration_s": 0.01}},
                       calibration=0.01)
        cur = _report({"s": {"wall_time_s": 2.0, "calibration_s": 0.02}},
                      calibration=0.02)
        assert compare_reports(base, cur, threshold=0.2).ok

    def test_real_regression_not_masked_by_normalization(self):
        # same machine speed, 2x slower suite: regression under both views
        base = _report({"s": {"wall_time_s": 1.0, "calibration_s": 0.01}})
        cur = _report({"s": {"wall_time_s": 2.0, "calibration_s": 0.01}})
        result = compare_reports(base, cur, threshold=0.2)
        assert not result.ok

    def test_throughput_metric_normalization_direction(self):
        # a 2x slower machine halves cycles_per_second; normalization must
        # divide the machine speed out, not amplify it
        base = _report({"s": {"cycles_per_second": 100.0, "calibration_s": 0.01}},
                       calibration=0.01)
        cur = _report({"s": {"cycles_per_second": 50.0, "calibration_s": 0.02}},
                      calibration=0.02)
        result = compare_reports(base, cur, threshold=0.2,
                                 metric="cycles_per_second")
        assert result.ok
        assert result.cases[0].ratio == pytest.approx(1.0)

    def test_min_delta_floor_ignores_jitter_on_tiny_suites(self):
        base = _report({"tiny": {"wall_time_s": 0.010}})
        cur = _report({"tiny": {"wall_time_s": 0.015}})  # +50% but only 5ms
        assert compare_reports(base, cur, threshold=0.2, min_delta_s=0.01).ok
        assert not compare_reports(base, cur, threshold=0.2, min_delta_s=0.0).ok


class TestCommittedBaseline:
    def test_baseline_file_is_a_valid_report(self):
        path = REPO_ROOT / "BENCH_PR10.json"
        report = load_report(str(path))
        assert report["scale"] == "smoke"
        names = {case.name for case in bench_cases()}
        assert set(report["suites"]) == names


class TestCLI:
    def _run(self, *args):
        env = {"PYTHONPATH": str(REPO_ROOT / "src")}
        return subprocess.run([sys.executable, "-m", "repro.bench", *args],
                              capture_output=True, text=True, env=env,
                              cwd=str(REPO_ROOT))

    def test_list(self):
        proc = self._run("--list")
        assert proc.returncode == 0
        assert "figure15-batch-sweep" in proc.stdout

    def test_compare_exit_codes(self, tmp_path):
        base = tmp_path / "base.json"
        good = tmp_path / "good.json"
        bad = tmp_path / "bad.json"
        base.write_text(json.dumps(_report({"s": {"wall_time_s": 1.0}})))
        good.write_text(json.dumps(_report({"s": {"wall_time_s": 1.0}})))
        bad.write_text(json.dumps(_report({"s": {"wall_time_s": 9.0}})))
        assert self._run("--compare", str(base), str(good)).returncode == 0
        proc = self._run("--compare", str(base), str(bad))
        assert proc.returncode == 1
        assert "REGRESSED" in proc.stdout
