"""The tier-1 surrogate error-bound pin, plus engine-config semantics.

The headline contract of the two-tier engine
(:mod:`repro.costmodel.runtime` + ``ServeConfig(engine=...)``):

* ``engine="surrogate", cost_model="exact"`` is **bit-identical** to the
  exact engine — the equivalence anchor,
* the adaptive calibrated surrogate reproduces exact TTFT/TPOT/e2e
  percentiles within :data:`repro.costmodel.SURROGATE_TOLERANCE` across
  platforms and scheduling policies (the documented error bound),
* surrogate runs are deterministic: the same config reproduces the same
  report, and per-trace invariants (request and output-token counts)
  match the exact engine exactly,
* single-signature workloads stay exact (the probe budget covers them, the
  table fallback replays probes verbatim),
* misconfiguration fails loudly: unknown engines, empty calibration
  budgets, ``cost_model`` under the exact engine, fitted models applied to
  a mismatched context.
"""

import warnings

import pytest

from repro.core.errors import ConfigError
from repro.costmodel import SURROGATE_TOLERANCE, calibrate_model
from repro.platforms import get_platform
from repro.schedules import Schedule
from repro.serve import ServeConfig, simulate_serving, trace_from_lists
from repro.serve.generators import generate_trace
from repro.serve.library import _serve_model
from repro.serve.policy import get_serve_policy

MODEL = _serve_model(64)

#: the serving percentiles the error bound is pinned on
PINNED_METRICS = ("ttft_p50", "ttft_p99", "tpot_p50", "tpot_p99",
                  "e2e_p50", "e2e_p99")


def heavy_trace(num_requests=32, seed=0):
    return generate_trace("heavy-tail", rate=400.0, num_requests=num_requests,
                          seed=seed, prompt_mean=48.0, prompt_max=192,
                          output_mean=4.0, output_max=8)


def run(trace, engine="exact", platform=None, policy=None, **knobs):
    knobs.setdefault("batch_cap", 4)
    knobs.setdefault("num_layers", 1)
    config = ServeConfig(model=MODEL, engine=engine, policy=policy, **knobs)
    hardware = get_platform(platform) if platform else None
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # drain-phase extrapolation clamps
        return simulate_serving(config, trace, Schedule.dynamic(),
                                hardware=hardware)


class TestExactEquivalence:
    def test_frozen_exact_model_is_bit_identical(self):
        trace = heavy_trace()
        exact = run(trace)
        frozen = run(trace, engine="surrogate", cost_model="exact")
        assert frozen.to_dict() == exact.to_dict()
        assert frozen.metrics() == exact.metrics()


class TestErrorBound:
    @pytest.mark.parametrize("platform", ["sda", "sda-hbm-small"])
    @pytest.mark.parametrize("policy", ["default", "chunked-prefill"])
    def test_percentiles_within_documented_tolerance(self, platform, policy):
        """The tier-1 pin: surrogate percentiles vs exact, per platform x policy."""
        trace = heavy_trace()
        spec = get_serve_policy(policy)
        exact = run(trace, platform=platform, policy=spec).metrics()
        surrogate = run(trace, engine="surrogate", platform=platform,
                        policy=spec, calibration_budget=16).metrics()
        for key in PINNED_METRICS:
            rel = abs(surrogate[key] - exact[key]) / max(abs(exact[key]), 1e-9)
            assert rel <= SURROGATE_TOLERANCE, (
                f"{platform}/{policy}: {key} off by {rel:.1%} "
                f"(exact {exact[key]}, surrogate {surrogate[key]})")

    @pytest.mark.parametrize("platform", ["sda", "sda-hbm-small"])
    def test_scheduling_counts_match_exact(self, platform):
        """Per-trace invariants hold — every request completes in full."""
        trace = heavy_trace()
        exact = run(trace, platform=platform)
        surrogate = run(trace, engine="surrogate", platform=platform,
                        calibration_budget=16)
        assert surrogate.num_requests == exact.num_requests
        assert surrogate.total_output_tokens == exact.total_output_tokens


class TestDeterminism:
    def test_rerun_is_bit_identical(self):
        trace = heavy_trace()
        first = run(trace, engine="surrogate", calibration_budget=12)
        second = run(trace, engine="surrogate", calibration_budget=12)
        assert first.to_dict() == second.to_dict()

    def test_table_kind_is_deterministic_too(self):
        trace = heavy_trace()
        first = run(trace, engine="surrogate", cost_model="table",
                    calibration_budget=12)
        second = run(trace, engine="surrogate", cost_model="table",
                     calibration_budget=12)
        assert first.to_dict() == second.to_dict()


class TestSingleSignatureWorkloads:
    def test_constant_workload_stays_exact(self):
        """One distinct signature -> the probe covers it; no prediction ever."""
        n = 6
        trace = trace_from_lists([float(i) * 50_000.0 for i in range(n)],
                                 [16] * n, [1] * n, name="constant")
        exact = run(trace)
        surrogate = run(trace, engine="surrogate", calibration_budget=2)
        assert surrogate.to_dict() == exact.to_dict()


class TestConfigValidation:
    def test_unknown_engine(self):
        with pytest.raises(ConfigError, match="unknown engine"):
            ServeConfig(model=MODEL, engine="warp")

    def test_empty_calibration_budget(self):
        with pytest.raises(ConfigError, match="calibration_budget"):
            ServeConfig(model=MODEL, engine="surrogate", calibration_budget=0)

    def test_cost_model_requires_surrogate_engine(self):
        with pytest.raises(ConfigError, match="engine='surrogate'"):
            ServeConfig(model=MODEL, cost_model="calibrated")

    def test_unknown_cost_model_name(self):
        with pytest.raises(ConfigError, match="registered"):
            ServeConfig(model=MODEL, engine="surrogate",
                        cost_model="quadratic")

    def test_none_resolves_to_adaptive_calibrated(self):
        config = ServeConfig(model=MODEL, engine="surrogate")
        assert config.cost_model == "calibrated"

    def test_mismatched_context_is_refused(self):
        """A model calibrated for seed 0 must not run against seed 1."""
        fitted, _ = calibrate_model(MODEL, budget=8, batch_cap=2,
                                    max_tokens=32, max_kv_rows=256,
                                    num_layers=1, seed=0)
        trace = heavy_trace(num_requests=4)
        run(trace, engine="surrogate", cost_model=fitted, num_layers=1,
            kv_tile_rows=64, seed=0)  # matching context serves fine
        with pytest.raises(ConfigError, match="recalibrate"):
            run(trace, engine="surrogate", cost_model=fitted, num_layers=1,
                kv_tile_rows=64, seed=1)


class TestFittedArtifacts:
    def test_offline_calibrated_model_serves(self):
        """A harness-fitted artifact plugs into the engine and stays bounded."""
        fitted, _ = calibrate_model(MODEL, budget=32, batch_cap=4,
                                    max_tokens=192, max_kv_rows=512,
                                    num_layers=1)
        trace = heavy_trace()
        exact = run(trace, num_layers=1).metrics()
        surrogate = run(trace, engine="surrogate", cost_model=fitted,
                        num_layers=1).metrics()
        assert surrogate["requests"] == exact["requests"]
        # batch composition may recompose under surrogate latencies, so the
        # step count drifts slightly but stays in the exact engine's regime
        assert surrogate["steps"] == pytest.approx(exact["steps"], rel=0.25)
        assert surrogate["e2e_p99"] == pytest.approx(exact["e2e_p99"],
                                                     rel=SURROGATE_TOLERANCE)

    def test_payload_dict_round_trips_through_config(self):
        fitted, _ = calibrate_model(MODEL, budget=8, batch_cap=2,
                                    max_tokens=32, max_kv_rows=256,
                                    num_layers=1)
        config = ServeConfig(model=MODEL, engine="surrogate",
                             cost_model=fitted.to_dict())
        assert config.cost_model == fitted
