"""Calibration-harness tests: probe sampling, fit validation, the CLI.

The contract under test (:mod:`repro.costmodel.calibrate`):

* :func:`probe_signatures` is deterministic, respects its budget, always
  keeps the signature-space extremes, and rejects an empty budget,
* :func:`calibrate_model` probes the exact engine, fits, and reports
  held-out residuals small enough to be a useful surrogate,
* the ``python -m repro.costmodel calibrate`` CLI writes a loadable JSON
  artifact, honors ``--tolerance`` and fails cleanly on bad configs.
"""

import json

import pytest

from repro.core.errors import ConfigError
from repro.costmodel import (CalibratedCostModel, TableCostModel,
                             calibrate_model, load_cost_model,
                             probe_signatures, run_probes)
from repro.costmodel.__main__ import main as costmodel_main
from repro.schedules import Schedule
from repro.serve.library import _serve_model


class TestProbeSignatures:
    def test_deterministic(self):
        assert probe_signatures(24) == probe_signatures(24)

    def test_budget_respected(self):
        assert len(probe_signatures(10)) == 10
        assert len(probe_signatures(1)) == 1

    def test_big_budget_returns_full_grid(self):
        grid = probe_signatures(10_000)
        assert len(grid) < 10_000
        assert len(set(grid)) == len(grid)

    def test_extremes_survive_any_budget(self):
        grid = probe_signatures(10_000)
        sampled = probe_signatures(8)
        assert sampled[0] == grid[0]
        assert sampled[-1] == grid[-1]

    def test_signatures_are_sorted_multisets(self):
        for num_tokens, kv_lengths in probe_signatures(64):
            assert num_tokens >= 1
            assert kv_lengths == tuple(sorted(kv_lengths))

    def test_empty_budget_rejected(self):
        with pytest.raises(ConfigError, match="probe budget"):
            probe_signatures(0)

    def test_bad_ranges_rejected(self):
        with pytest.raises(ConfigError, match="batch_cap"):
            probe_signatures(8, batch_cap=0)
        with pytest.raises(ConfigError, match="max_kv_rows"):
            probe_signatures(8, kv_tile_rows=64, max_kv_rows=32)


class TestRunProbes:
    def test_probes_are_positive_and_contexted(self):
        model = _serve_model(64)
        signatures = probe_signatures(6, batch_cap=2, max_tokens=32,
                                      max_kv_rows=256)
        probes, context = run_probes(signatures, model=model,
                                     schedule=Schedule.dynamic(),
                                     num_layers=1)
        assert len(probes) == len(signatures)
        assert context
        assert all(cycles > 0 for *_, cycles in probes)


class TestCalibrateModel:
    def test_report_fields_and_holdout(self):
        model = _serve_model(64)
        fitted, report = calibrate_model(model, budget=16, batch_cap=4,
                                         max_tokens=64, max_kv_rows=512,
                                         num_layers=1)
        assert isinstance(fitted, CalibratedCostModel)
        assert report["kind"] == "calibrated"
        assert report["platform"] == "sda"
        assert report["probes"] == 16
        assert report["holdout_probes"] > 0
        assert report["fit_probes"] + report["holdout_probes"] == 16
        assert report["holdout_max_rel"] >= report["holdout_mean_rel"] >= 0.0
        assert report["fit"]["num_probes"] == report["fit_probes"]
        assert fitted.context_hash == report["context"]

    def test_table_kind(self):
        model = _serve_model(64)
        fitted, report = calibrate_model(model, kind="table", budget=6,
                                         batch_cap=2, max_tokens=32,
                                         max_kv_rows=256, num_layers=1)
        assert isinstance(fitted, TableCostModel)
        assert report["kind"] == "table"

    def test_tiny_budget_skips_holdout(self):
        model = _serve_model(64)
        fitted, report = calibrate_model(model, budget=4, batch_cap=2,
                                         max_tokens=32, max_kv_rows=256,
                                         num_layers=1)
        assert report["holdout_probes"] == 0
        assert report["holdout_max_rel"] == 0.0

    def test_empty_budget_rejected(self):
        with pytest.raises(ConfigError, match="probe budget"):
            calibrate_model(_serve_model(64), budget=0)


class TestCLI:
    def _calibrate(self, *extra):
        return costmodel_main(["calibrate", "--model-scale", "64",
                               "--budget", "8", "--batch-cap", "2",
                               "--max-tokens", "32", "--max-kv-rows", "256",
                               "--num-layers", "1", *extra])

    def test_writes_loadable_artifact(self, tmp_path, capsys):
        path = tmp_path / "model.json"
        assert self._calibrate("--output", str(path)) == 0
        report = json.loads(capsys.readouterr().out.split("wrote")[0])
        assert report["probes"] == 8
        model = load_cost_model(str(path))
        assert isinstance(model, CalibratedCostModel)
        assert model.context_hash == report["context"]

    def test_tolerance_gate(self, capsys):
        assert self._calibrate("--tolerance", "1e9") == 0
        capsys.readouterr()
        assert self._calibrate("--tolerance", "0.0") == 1
        assert "exceeds the tolerance" in capsys.readouterr().err

    def test_config_errors_exit_2(self, capsys):
        assert self._calibrate("--budget", "0") == 2
        assert "probe budget" in capsys.readouterr().err
