"""Cost-model artifact tests: registry, table/calibrated fits, guards, JSON.

The contract under test (:mod:`repro.costmodel.models`):

* the builtin kinds are registered and **sealed** — re-registration and
  unknown-name resolution fail with listing errors,
* a :class:`TableCostModel` replays probed signatures exactly and
  interpolates unseen ones; a :class:`CalibratedCostModel` recovers an
  affine cost law exactly and records its residual metadata,
* extrapolation outside the probed ranges is **never silent**: it clamps
  with a :class:`CostModelExtrapolationWarning` or raises,
* every artifact survives a JSON round-trip, and fitted models refuse to
  run against a context they were not calibrated for.
"""

import json

import pytest

from repro.core.errors import ConfigError
from repro.costmodel import (CalibratedCostModel, CostModelExtrapolationWarning,
                             ExactCostModel, FEATURE_NAMES, TableCostModel,
                             check_context, cost_model_from_dict,
                             cost_model_names, fit_calibrated_model,
                             fit_from_probes, get_cost_model_class,
                             load_cost_model, register_cost_model,
                             resolve_cost_model, save_cost_model,
                             signature_features)

#: an exactly-affine synthetic cost law the calibrated fit must recover
AFFINE = (100.0, 7.0, 3.0, 0.25)  # intercept, tokens, requests, kv_rows


def affine_cycles(num_tokens, kv_lengths):
    features = signature_features(num_tokens, kv_lengths)
    return sum(c * f for c, f in zip(AFFINE, features))


def affine_probes():
    signatures = [(t, (kv,) * r)
                  for t in (1, 4, 16, 64)
                  for r in (1, 2, 4)
                  for kv in (64, 256, 1024)]
    return [(t, k, affine_cycles(t, k)) for t, k in signatures]


class TestRegistry:
    def test_builtins_registered(self):
        assert cost_model_names() == ["calibrated", "exact", "table"]
        assert get_cost_model_class("table") is TableCostModel
        assert get_cost_model_class("calibrated") is CalibratedCostModel
        assert get_cost_model_class("exact") is ExactCostModel

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ConfigError, match="calibrated"):
            get_cost_model_class("quadratic")

    def test_builtins_are_sealed(self):
        with pytest.raises(ConfigError, match="sealed|already registered"):
            register_cost_model("table")(TableCostModel)


class TestSignatureFeatures:
    def test_basis(self):
        assert signature_features(5, (64, 128)) == (1.0, 5.0, 2.0, 192.0)
        assert len(FEATURE_NAMES) == 4


class TestExactCostModel:
    def test_predict_refuses(self):
        with pytest.raises(ConfigError, match="delegates"):
            ExactCostModel().predict(1, (64,))

    def test_round_trip(self):
        payload = ExactCostModel().to_dict()
        assert payload == {"kind": "exact"}
        assert isinstance(cost_model_from_dict(payload), ExactCostModel)


class TestTableCostModel:
    def test_probed_signatures_replay_exactly(self):
        probes = affine_probes()
        table = TableCostModel(probes=probes)
        for t, k, cycles in probes:
            assert table.predict(t, k) == cycles

    def test_interpolation_between_probes(self):
        # two probes; an in-range unseen signature lands between their costs
        table = TableCostModel(probes=[(1, (64,), 100.0), (9, (192,), 300.0)],
                               neighbors=2)
        mid = table.predict(5, (128,))
        assert 100.0 < mid < 300.0

    def test_empty_probes_rejected(self):
        with pytest.raises(ConfigError, match="at least one probe"):
            TableCostModel(probes=())

    def test_extrapolation_clamps_with_warning(self):
        table = TableCostModel(probes=affine_probes())
        with pytest.warns(CostModelExtrapolationWarning, match="outside"):
            clamped = table.predict(4096, (65536,))
        # clamped to the probed range: bounded by the probed cycle extremes
        cycles = [c for *_, c in affine_probes()]
        assert min(cycles) <= clamped <= max(cycles)

    def test_extrapolation_raise_mode(self):
        table = TableCostModel(probes=affine_probes(), extrapolation="raise")
        with pytest.raises(ConfigError, match="extrapolation"):
            table.predict(4096, (65536,))

    def test_unknown_extrapolation_mode(self):
        with pytest.raises(ConfigError, match="extrapolation"):
            TableCostModel(probes=affine_probes(), extrapolation="linear")

    def test_json_round_trip(self):
        table = TableCostModel(probes=affine_probes(), context_hash="ctx",
                               kv_tile_rows=128, neighbors=3)
        rebuilt = cost_model_from_dict(json.loads(json.dumps(table.to_dict())))
        assert rebuilt == table
        assert rebuilt.predict(4, (256, 256)) == table.predict(4, (256, 256))


class TestCalibratedCostModel:
    def test_fit_recovers_affine_law(self):
        fitted = fit_calibrated_model(affine_probes(), context_hash="ctx")
        assert fitted.num_probes == len(affine_probes())
        assert fitted.residual_max_rel < 1e-6
        for t, k in ((2, (128,)), (8, (64, 256)), (32, (1024, 64, 64))):
            assert fitted.predict(t, k) == pytest.approx(
                affine_cycles(t, k), rel=1e-6)

    def test_fit_metadata(self):
        fitted = fit_calibrated_model(affine_probes(), context_hash="ctx")
        meta = fitted.fit_metadata()
        assert meta["num_probes"] == len(affine_probes())
        assert meta["feature_names"] == list(FEATURE_NAMES)
        assert meta["context_hash"] == "ctx"
        assert len(meta["coefficients"]) == len(FEATURE_NAMES)

    def test_zero_probes_rejected(self):
        with pytest.raises(ConfigError, match="zero probes"):
            fit_calibrated_model([])

    def test_underdetermined_fit_rejected(self):
        probes = affine_probes()[:len(FEATURE_NAMES) - 1]
        with pytest.raises(ConfigError, match="table"):
            fit_calibrated_model(probes)

    def test_prediction_floor_is_one_cycle(self):
        # coefficients that dip below zero in-range still cost >= 1 cycle
        model = CalibratedCostModel(
            coefficients=(-1000.0, 1.0, 1.0, 0.0),
            feature_min=(1.0, 1.0, 1.0, 64.0),
            feature_max=(1.0, 64.0, 8.0, 4096.0),
            num_probes=4, residual_mean_rel=0.0, residual_max_rel=0.0,
            cycles_min=1.0, cycles_max=2.0)
        assert model.predict(1, (64,)) == 1.0

    def test_extrapolation_clamps_with_warning(self):
        fitted = fit_calibrated_model(affine_probes())
        with pytest.warns(CostModelExtrapolationWarning, match="clamping"):
            clamped = fitted.predict(4096, (65536,) * 2)
        # clamping is per-feature: tokens and kv_rows snap to their probed
        # maxima while the in-range request count (2) is preserved
        assert clamped == pytest.approx(fitted.predict(64, (2048, 2048)),
                                        rel=1e-6)

    def test_extrapolation_raise_mode(self):
        fitted = fit_calibrated_model(affine_probes(), extrapolation="raise")
        with pytest.raises(ConfigError, match="recalibrate"):
            fitted.predict(4096, (65536,))

    def test_json_round_trip(self):
        fitted = fit_calibrated_model(affine_probes(), context_hash="ctx",
                                      kv_tile_rows=128)
        rebuilt = cost_model_from_dict(json.loads(json.dumps(fitted.to_dict())))
        assert rebuilt == fitted


class TestFitFromProbes:
    def test_calibrated_kind(self):
        fitted = fit_from_probes(affine_probes(), kind="calibrated")
        assert isinstance(fitted, CalibratedCostModel)

    def test_table_kind(self):
        fitted = fit_from_probes(affine_probes(), kind="table")
        assert isinstance(fitted, TableCostModel)

    def test_small_probe_set_falls_back_to_table(self):
        probes = affine_probes()[:2]
        fitted = fit_from_probes(probes, kind="calibrated")
        assert isinstance(fitted, TableCostModel)
        # single-signature workloads therefore stay exact
        t, k, cycles = probes[0]
        assert fitted.predict(t, k) == cycles

    def test_zero_probes_rejected(self):
        with pytest.raises(ConfigError, match="empty"):
            fit_from_probes([], kind="calibrated")

    def test_unfittable_kind_rejected(self):
        with pytest.raises(ConfigError, match="exact"):
            fit_from_probes(affine_probes(), kind="exact")


class TestResolveCostModel:
    def test_none_means_adaptive_calibrated(self):
        assert resolve_cost_model(None) == "calibrated"

    def test_registered_names_pass(self):
        for name in cost_model_names():
            assert resolve_cost_model(name) == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="registered"):
            resolve_cost_model("quadratic")

    def test_payload_dict_is_reconstructed(self):
        table = TableCostModel(probes=affine_probes())
        resolved = resolve_cost_model(table.to_dict())
        assert resolved == table

    def test_instances_pass_through(self):
        table = TableCostModel(probes=affine_probes())
        assert resolve_cost_model(table) is table

    def test_paths_and_junk_rejected(self):
        # file paths must be loaded via load_cost_model first, so sweep
        # cache keys hash model content rather than a mutable path
        with pytest.raises(ConfigError, match="registered"):
            resolve_cost_model("/tmp/costmodel.json")
        with pytest.raises(ConfigError, match="cost_model must be"):
            resolve_cost_model(42)

    def test_payload_without_kind_rejected(self):
        with pytest.raises(ConfigError, match="kind"):
            cost_model_from_dict({"probes": []})


class TestSaveLoad:
    def test_round_trip_via_file(self, tmp_path):
        fitted = fit_calibrated_model(affine_probes(), context_hash="ctx")
        path = tmp_path / "model.json"
        save_cost_model(fitted, str(path))
        assert load_cost_model(str(path)) == fitted

    def test_context_check(self):
        fitted = fit_calibrated_model(affine_probes(), context_hash="ctx-a")
        check_context(fitted, "ctx-a")  # matching context passes
        with pytest.raises(ConfigError, match="recalibrate"):
            check_context(fitted, "ctx-b")

    def test_uncalibrated_context_passes_everywhere(self):
        table = TableCostModel(probes=affine_probes())  # context_hash=""
        check_context(table, "any-context")
