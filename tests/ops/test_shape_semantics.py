"""Shape-semantics tests for the STeP operators (Appendix B.1, Tables 3-7)."""

import pytest

from repro.core.dims import Dim
from repro.core.dtypes import BufferType, SelectorType, Tile, TileType, TupleType
from repro.core.errors import ShapeError, TypeMismatchError
from repro.core.graph import InputStream
from repro.core.shape import StreamShape
from repro.ops import (Accum, Bufferize, EagerMerge, Expand, FlatMap, Flatten,
                       LinearOffChipLoad, LinearOffChipLoadRef, LinearOffChipStore, Map,
                       Partition, Promote, RandomOffChipLoad, RandomOffChipStore,
                       Reassemble, Repeat, Reshape, Scan, Streamify, Zip)
from repro.ops.functions import RetileStreamify, Scale, SumAccum


def stream(shape, dtype=None, name="in"):
    return InputStream(StreamShape(shape), dtype or TileType(1, 64), name=name).stream


def dims(handle):
    return [str(d) for d in handle.shape]


class TestHigherOrder:
    def test_map_preserves_shape(self):
        x = stream([4, 2])
        assert Map(x, Scale(1.0)).output.shape.concrete() == (4, 2)

    def test_map_requires_function(self):
        with pytest.raises(TypeMismatchError):
            Map(stream([4]), fn=lambda t: t)

    def test_accum_drops_inner_dims(self):
        x = stream([4, Dim.dynamic("D"), 2])
        out = Accum(x, SumAccum(), rank=2).output
        assert out.shape.ndims == 1 and str(out.shape) == "[4]"

    def test_accum_rank_exceeding_input_rejected(self):
        with pytest.raises(TypeMismatchError):
            Accum(stream([4]), SumAccum(), rank=1)

    def test_scan_preserves_shape(self):
        x = stream([4, 3])
        assert Scan(x, SumAccum(), rank=1).output.shape.concrete() == (4, 3)

    def test_flatmap_appends_dimensions(self):
        x = stream([4])
        out = FlatMap(x, RetileStreamify(1), rank=1).output
        assert out.shape.ndims == 2
        assert out.shape.innermost().is_ragged
        fixed = FlatMap(x, RetileStreamify(1), rank=1, expansion=[4]).output
        assert fixed.shape.concrete() == (4, 4)


class TestShapeOps:
    def test_flatten(self):
        x = stream([2, 3, 4])
        assert Flatten(x, 0, 1).output.shape.concrete() == (2, 12)

    def test_reshape_innermost_pads(self):
        x = stream([Dim.dynamic("D")])
        op = Reshape(x, chunk_size=4, level=0, pad=Tile.meta(1, 64))
        assert op.data.shape.ndims == 2
        assert op.padding.dtype.nbytes() == 1
        with pytest.raises(ShapeError):
            Reshape(x, chunk_size=4, level=0)  # missing pad value

    def test_reshape_outer_static(self):
        x = stream([6, 4])
        op = Reshape(x, chunk_size=3, level=1, pad=None)
        assert op.data.shape.concrete() == (2, 3, 4)

    def test_promote(self):
        assert Promote(stream([5])).output.shape.concrete() == (1, 5)

    def test_expand_takes_reference_shape(self):
        data = stream([2, 1, 1], name="data")
        ref = stream([2, Dim.ragged("R"), 2], name="ref")
        out = Expand(data, ref, rank=2).output
        assert out.shape.ndims == 3
        assert out.dtype == data.dtype

    def test_expand_rank_bounds(self):
        with pytest.raises(ShapeError):
            Expand(stream([2]), stream([2], name="r"), rank=1)

    def test_repeat_adds_inner_dim(self):
        assert Repeat(stream([5]), count=3).output.shape.concrete() == (5, 3)

    def test_zip_produces_tuple(self):
        a, b = stream([4, 2], name="a"), stream([4, 2], name="b")
        out = Zip(a, b).output
        assert isinstance(out.dtype, TupleType)
        assert out.shape.concrete() == (4, 2)
        with pytest.raises(ShapeError):
            Zip(stream([4], name="c"), stream([4, 2], name="d"))


class TestRouting:
    def test_partition_shapes(self):
        x = stream([10, 1])
        sel = stream([10], dtype=SelectorType(2), name="sel")
        op = Partition(x, sel, rank=1, num_consumers=2)
        assert len(op.branches) == 2
        for branch in op.branches:
            assert branch.shape.ndims == 2
            assert branch.shape.outermost().is_dynamic
            assert branch.shape.innermost().evaluate() == 1

    def test_partition_selector_rank_checked(self):
        x = stream([10, 1])
        bad_sel = stream([10, 1], dtype=SelectorType(2), name="sel")
        with pytest.raises(ShapeError):
            Partition(x, bad_sel, rank=1, num_consumers=2)

    def test_reassemble_adds_dimension(self):
        sel = stream([10], dtype=SelectorType(2), name="sel")
        branches = [stream([Dim.dynamic(), 1], name=f"b{i}") for i in range(2)]
        out = Reassemble(branches, sel, rank=1).output
        assert out.shape.ndims == 3  # selector dims + new group dim + chunk dims

    def test_reassemble_requires_matching_ranks(self):
        sel = stream([10], dtype=SelectorType(2), name="sel")
        with pytest.raises(ShapeError):
            Reassemble([stream([4, 1], name="a"), stream([4], name="b")], sel, rank=1)

    def test_eager_merge_outputs(self):
        branches = [stream([Dim.dynamic(), 1], name=f"b{i}") for i in range(3)]
        op = EagerMerge(branches, rank=1)
        assert op.data.shape.ndims == 2
        assert isinstance(op.selector.dtype, SelectorType)
        assert op.selector.dtype.num_targets == 3


class TestMemoryOps:
    def test_linear_load_shape_matches_figure2(self):
        """Figure 2: a (64,256) tensor read as (64,64) tiles with shape (1,4)."""
        ref = stream([Dim.dynamic("D1")], name="ref")
        op = LinearOffChipLoadRef(ref=ref, in_mem_shape=(64, 256), tile_shape=(64, 64),
                                  stride_tiled=(4, 1), shape_tiled=(1, 4))
        assert str(op.output.shape) == "[D1, 1, 4]"
        assert op.output.dtype.concrete_shape() == (64, 64)

    def test_linear_load_static_variant(self):
        op = LinearOffChipLoad(count=3, in_mem_shape=(32, 32), tile_shape=(32, 32))
        assert op.output.shape.concrete() == (3, 1, 1)

    def test_linear_load_tiling_must_divide(self):
        with pytest.raises(ShapeError):
            LinearOffChipLoad(count=1, in_mem_shape=(60, 64), tile_shape=(32, 64))

    def test_linear_store_is_sink(self):
        op = LinearOffChipStore(stream([4]))
        assert op.outputs == []

    def test_random_load_keeps_address_shape(self):
        addr = stream([8, Dim.ragged("L")], name="addr")
        op = RandomOffChipLoad(addr, tile_shape=(128, 64))
        assert op.output.shape.ndims == 2
        multi = RandomOffChipLoad(addr, tile_shape=(128, 64), tiles_per_access=3)
        assert multi.output.shape.ndims == 3

    def test_random_store_ack(self):
        addr = stream([8], name="addr")
        data = stream([8], name="data")
        op = RandomOffChipStore(addr, data)
        assert op.outputs[0].shape.concrete() == (8,)

    def test_bufferize_and_streamify(self):
        x = stream([2, Dim.ragged("R"), 2])
        buf = Bufferize(x, rank=2)
        assert isinstance(buf.output.dtype, BufferType)
        assert buf.output.shape.concrete() == (2,)
        ref = stream([2, Dim.dynamic("N")], name="ref")
        out = Streamify(buf.output, ref).output
        assert out.shape.ndims == 2 + 2  # ref dims + buffered dims
        with pytest.raises(TypeMismatchError):
            Bufferize(buf.output, rank=1)  # cannot buffer buffers

    def test_streamify_affine_requires_static_buffer(self):
        x = stream([2, Dim.ragged("R")])
        buf = Bufferize(x, rank=1)
        with pytest.raises(ShapeError):
            Streamify(buf.output, out_shape=(1, 4), stride=(4, 1))
