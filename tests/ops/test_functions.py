"""Tests for the hardware function library used by the higher-order operators."""

import numpy as np
import pytest

from repro.core.dtypes import Tile, TupleValue
from repro.core.errors import ShapeError, TypeMismatchError
from repro.ops.functions import (ElemAdd, ElemMul, Exp, Matmul, MatmulAccum, RetileCol,
                                 RetileRow, RetileStreamify, RowMax, RowSum, Scale, SiLU,
                                 SplitCols, SumAccum, SwiGLUGate)


def tile(array):
    return Tile.from_array(np.asarray(array, dtype=np.float32))


class TestElementWise:
    def test_add_and_mul(self, rng):
        a, b = rng.standard_normal((2, 3)), rng.standard_normal((2, 3))
        assert np.allclose(ElemAdd()(tile(a), tile(b)).to_array(), a + b, atol=1e-5)
        assert np.allclose(ElemMul()(tile(a), tile(b)).to_array(), a * b, atol=1e-5)
        assert ElemAdd().flops(tile(a), tile(b)) == 6

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            ElemAdd()(tile(np.zeros((2, 3))), tile(np.zeros((3, 2))))

    def test_meta_tiles_stay_meta(self):
        out = ElemAdd()(Tile.meta(2, 3), Tile.meta(2, 3))
        assert not out.has_data and out.shape == (2, 3)

    def test_scale_silu_exp(self, rng):
        a = rng.standard_normal((2, 4))
        assert np.allclose(Scale(2.5)(tile(a)).to_array(), a * 2.5, atol=1e-5)
        silu = SiLU()(tile(a)).to_array()
        assert np.allclose(silu, a / (1 + np.exp(-a)), atol=1e-4)
        assert np.allclose(Exp()(tile(a)).to_array(), np.exp(a), atol=1e-4)

    def test_swiglu_gate(self, rng):
        g, u = rng.standard_normal((2, 4)), rng.standard_normal((2, 4))
        expected = (g / (1 + np.exp(-g))) * u
        assert np.allclose(SwiGLUGate()(tile(g), tile(u)).to_array(), expected, atol=1e-4)


class TestMatmul:
    def test_forward(self, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((4, 5))
        out = Matmul()(tile(a), tile(b))
        assert np.allclose(out.to_array(), a @ b, atol=1e-4)
        assert Matmul().flops(tile(a), tile(b)) == 2 * 3 * 4 * 5

    def test_transpose_b(self, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((5, 4))
        out = Matmul(transpose_b=True)(tile(a), tile(b))
        assert np.allclose(out.to_array(), a @ b.T, atol=1e-4)

    def test_dimension_mismatch(self):
        with pytest.raises(ShapeError):
            Matmul()(Tile.meta(3, 4), Tile.meta(5, 6))

    def test_meta_output_shape(self):
        out = Matmul()(Tile.meta(3, 4), Tile.meta(4, 6))
        assert out.shape == (3, 6) and not out.has_data


class TestAccumFunctions:
    def test_sum_accum(self, rng):
        fn = SumAccum()
        a, b = rng.standard_normal((2, 2)), rng.standard_normal((2, 2))
        state = fn(tile(a), fn.init())
        state = fn(tile(b), state)
        assert np.allclose(state.to_array(), a + b, atol=1e-5)

    def test_matmul_accum_over_tuples(self, rng):
        fn = MatmulAccum()
        a1, b1 = rng.standard_normal((2, 3)), rng.standard_normal((3, 4))
        a2, b2 = rng.standard_normal((2, 3)), rng.standard_normal((3, 4))
        state = fn(TupleValue([tile(a1), tile(b1)]), fn.init())
        state = fn(TupleValue([tile(a2), tile(b2)]), state)
        assert np.allclose(state.to_array(), a1 @ b1 + a2 @ b2, atol=1e-4)
        with pytest.raises(TypeMismatchError):
            fn(tile(a1), None)

    def test_retile_row_and_col(self, rng):
        a, b = rng.standard_normal((2, 3)), rng.standard_normal((1, 3))
        stacked = RetileRow()(tile(b), RetileRow()(tile(a), None))
        assert stacked.shape == (3, 3)
        assert np.allclose(stacked.to_array(), np.vstack([a, b]), atol=1e-5)
        c, d = rng.standard_normal((2, 3)), rng.standard_normal((2, 2))
        wide = RetileCol()(tile(d), RetileCol()(tile(c), None))
        assert wide.shape == (2, 5)

    def test_retile_mismatch(self):
        with pytest.raises(ShapeError):
            RetileRow()(Tile.meta(1, 4), Tile.meta(1, 5))


class TestSplitters:
    def test_retile_streamify(self, rng):
        a = rng.standard_normal((5, 3))
        pieces = RetileStreamify(2)(tile(a))
        assert [p.rows for p in pieces] == [2, 2, 1]
        assert np.allclose(np.vstack([p.to_array() for p in pieces]), a, atol=1e-5)

    def test_split_cols(self):
        pieces = SplitCols(4)(Tile.meta(2, 10))
        assert [p.cols for p in pieces] == [4, 4, 2]

    def test_invalid_sizes(self):
        with pytest.raises(ShapeError):
            RetileStreamify(0)
        with pytest.raises(ShapeError):
            SplitCols(-1)


class TestReductions:
    def test_row_max_and_sum(self, rng):
        a = rng.standard_normal((3, 5))
        assert np.allclose(RowMax()(tile(a)).to_array(), a.max(axis=1, keepdims=True), atol=1e-5)
        assert np.allclose(RowSum()(tile(a)).to_array(), a.sum(axis=1, keepdims=True), atol=1e-5)
