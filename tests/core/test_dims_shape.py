"""Tests for dimension kinds and the stream-shape algebra (Section 3.1)."""

import pytest

from repro.core import symbolic as sym
from repro.core.dims import (Dim, DimKind, DimRequirement, add_dims, ceil_div_dim,
                             dims_compatible, multiply_dims)
from repro.core.errors import ShapeError
from repro.core.shape import StreamShape


class TestDim:
    def test_static(self):
        d = Dim.static(8)
        assert d.is_static and d.is_regular and not d.is_dynamic
        assert d.evaluate() == 8

    def test_dynamic_regular(self):
        d = Dim.dynamic(name="D")
        assert d.is_dynamic and d.is_regular and not d.is_ragged

    def test_ragged(self):
        d = Dim.ragged(name="R")
        assert d.is_ragged and d.is_dynamic and not d.is_regular

    def test_negative_rejected(self):
        with pytest.raises(ShapeError):
            Dim.static(-1)

    def test_of_coercion(self):
        assert Dim.of(4).is_static
        assert Dim.of(sym.Sym("D")).kind is DimKind.DYNAMIC_REGULAR
        d = Dim.ragged()
        assert Dim.of(d) is d

    def test_restrictiveness_ordering(self):
        static, dynamic, ragged = Dim.static(4), Dim.dynamic(), Dim.ragged()
        # an operator accepting ANY accepts all kinds
        assert all(d.satisfies(DimRequirement.ANY) for d in (static, dynamic, ragged))
        # REGULAR excludes ragged dims
        assert static.satisfies(DimRequirement.REGULAR)
        assert dynamic.satisfies(DimRequirement.REGULAR)
        assert not ragged.satisfies(DimRequirement.REGULAR)
        # STATIC excludes everything data dependent
        assert static.satisfies(DimRequirement.STATIC)
        assert not dynamic.satisfies(DimRequirement.STATIC)


class TestDimArithmetic:
    def test_multiply_static(self):
        assert multiply_dims([Dim.static(2), Dim.static(3)]).evaluate() == 6

    def test_multiply_with_dynamic(self):
        result = multiply_dims([Dim.static(2), Dim.dynamic("D")])
        assert result.is_dynamic and not result.is_ragged
        assert result.evaluate({"D": 5}) == 10

    def test_ragged_absorbs(self):
        """Flattening over a ragged dimension yields a fresh ragged dimension
        (example (1) in Section 3.1)."""
        result = multiply_dims([Dim.static(2), Dim.ragged("R")])
        assert result.is_ragged
        assert result.size != sym.Sym("R") * 2

    def test_ceil_div_dim(self):
        assert ceil_div_dim(Dim.static(10), 4).evaluate() == 3
        dyn = ceil_div_dim(Dim.dynamic("D"), 4)
        assert dyn.evaluate({"D": 9}) == 3
        assert ceil_div_dim(Dim.ragged("R"), 4).is_ragged

    def test_add_dims(self):
        assert add_dims(Dim.static(2), Dim.static(3)).evaluate() == 5
        assert add_dims(Dim.ragged(), Dim.static(3)).is_ragged

    def test_compatibility(self):
        assert dims_compatible(Dim.static(4), Dim.static(4))
        assert not dims_compatible(Dim.static(4), Dim.static(5))
        assert dims_compatible(Dim.dynamic("D"), Dim.static(5))
        assert dims_compatible(Dim.static(5), Dim.dynamic("D"))


class TestStreamShape:
    def test_rank_and_dims(self):
        shape = StreamShape([2, 2, Dim.ragged("D0")])
        assert shape.rank == 2 and shape.ndims == 3
        assert shape.dim(0).is_ragged
        assert shape.dim(2).evaluate() == 2

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            StreamShape([])

    def test_inner_outer(self):
        shape = StreamShape([4, 3, 2])
        assert [d.evaluate() for d in shape.inner(2)] == [3, 2]
        assert [d.evaluate() for d in shape.outer(1)] == [4]

    def test_cardinality(self):
        shape = StreamShape([4, Dim.dynamic("D")])
        assert shape.cardinality().evaluate({"D": 3}) == 12

    def test_flatten_static(self):
        shape = StreamShape([2, 3, 4]).flatten(0, 1)
        assert [d.evaluate() for d in shape] == [2, 12]

    def test_flatten_ragged_absorbs(self):
        shape = StreamShape([2, 2, Dim.ragged("D0")]).flatten(0, 1)
        assert shape.ndims == 2
        assert shape.innermost().is_ragged

    def test_flatten_bad_range(self):
        with pytest.raises(ShapeError):
            StreamShape([2, 3]).flatten(1, 0)
        with pytest.raises(ShapeError):
            StreamShape([2, 3]).flatten(0, 5)

    def test_reshape_split_innermost(self):
        shape = StreamShape([Dim.dynamic("D")]).reshape_split(0, 4)
        assert shape.ndims == 2
        assert shape.innermost().evaluate() == 4
        assert shape.outermost().evaluate({"D": 9}) == 3

    def test_reshape_split_outer_requires_static_divisible(self):
        with pytest.raises(ShapeError):
            StreamShape([Dim.dynamic("D"), 4]).reshape_split(1, 2)
        with pytest.raises(ShapeError):
            StreamShape([6, 4]).reshape_split(1, 4)
        shape = StreamShape([6, 4]).reshape_split(1, 3)
        assert [d.evaluate() for d in shape] == [2, 3, 4]

    def test_promote(self):
        assert [d.evaluate() for d in StreamShape([5]).promote()] == [1, 5]
        empty = StreamShape([0]).promote()
        assert empty.outermost().evaluate() == 0

    def test_drop_inner_and_append(self):
        shape = StreamShape([2, 3, 4])
        assert [d.evaluate() for d in shape.drop_inner(2)] == [2]
        assert [d.evaluate() for d in shape.append([5])] == [2, 3, 4, 5]
        assert [d.evaluate() for d in shape.prepend([7])] == [7, 2, 3, 4]

    def test_compatible_with(self):
        a = StreamShape([10, 1])
        b = StreamShape([Dim.dynamic("D"), 1])
        assert a.compatible_with(b)
        assert not a.compatible_with(StreamShape([10, 2]))
        assert not a.compatible_with(StreamShape([10]))

    def test_substitute_and_concrete(self):
        shape = StreamShape([Dim.dynamic("D"), 4])
        assert shape.substitute({"D": 6}).is_static
        assert shape.concrete({"D": 6}) == (6, 4)

    def test_indexing_and_str(self):
        shape = StreamShape([2, 3])
        assert shape[0].evaluate() == 2
        assert isinstance(shape[0:1], StreamShape)
        assert str(shape) == "[2, 3]"
