"""Tests for the program graph and the frontend handles."""

import pytest

from repro.core.dtypes import TileType
from repro.core.errors import GraphError
from repro.core.graph import InputStream, Program
from repro.core.shape import StreamShape
from repro.ops import Flatten, Map, Promote
from repro.ops.functions import Scale


def small_input(name="x"):
    return InputStream(StreamShape([4, 2]), TileType(1, 8), name=name).stream


class TestHandles:
    def test_shape_and_dtype_exposed(self):
        x = small_input()
        assert x.rank == 1
        assert str(x.shape) == "[4, 2]"
        assert x.dtype.nbytes() == 16

    def test_override_shape(self):
        x = small_input()
        op = Promote(x)
        op.output.override_shape(StreamShape([4, 2]))
        assert op.output.shape.concrete() == (4, 2)

    def test_single_output_property(self):
        x = small_input()
        op = Map(x, Scale(2.0))
        assert op.output is op.outputs[0]


class TestProgram:
    def test_collects_reachable_operators(self):
        x = small_input()
        a = Map(x, Scale(2.0), name="a")
        b = Flatten(a.output, 0, 1, name="b")
        program = Program([b.output], name="p")
        names = {op.name for op in program.operators}
        assert names == {"x", "a", "b"}

    def test_inputs_listed(self):
        x = small_input("activations")
        program = Program([Map(x, Scale(1.0)).output])
        assert [op.name for op in program.inputs] == ["activations"]
        assert program.input_named("activations").name == "activations"
        with pytest.raises(GraphError):
            program.input_named("missing")

    def test_topological_order_respects_dependencies(self):
        x = small_input()
        a = Map(x, Scale(2.0), name="a")
        b = Map(a.output, Scale(3.0), name="b")
        program = Program([b.output])
        order = [op.name for op in program.topological_order()]
        assert order.index("x") < order.index("a") < order.index("b")

    def test_consumers_of(self):
        x = small_input()
        a = Map(x, Scale(2.0), name="a")
        b = Map(x, Scale(3.0), name="b")
        program = Program([a.output, b.output])
        consumers = {op.name for op, _ in program.consumers_of(x)}
        assert consumers == {"a", "b"}

    def test_operators_of_kind_and_describe(self):
        x = small_input()
        program = Program([Map(x, Scale(1.0)).output])
        assert len(program.operators_of_kind("Map")) == 1
        assert "Map" in program.describe()

    def test_bad_sink_rejected(self):
        with pytest.raises(GraphError):
            Program(["not a sink"])
