"""Tests for the stop-token stream model (Section 3.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import StreamProtocolError
from repro.core.stream import (DONE,
    Data,
    Stop,
    ListEmitter,
    data_values,
    infer_concrete_shape,
    nested_from_tokens,
    tokens_from_nested,
    validate_tokens)


def as_sig(tokens):
    """Compact signature of a token stream for readable assertions."""
    out = []
    for t in tokens:
        if isinstance(t, Data):
            out.append(t.value)
        elif isinstance(t, Stop):
            out.append(f"S{t.level}")
        else:
            out.append("D")
    return out


class TestSerialization:
    def test_paper_example_equation_1(self):
        """The stream of example (1): shape [2, 2, D0]."""
        nested = [[[1, 2], [3]], [[4], [5, 6, 7]]]
        tokens = tokens_from_nested(nested, rank=2)
        assert as_sig(tokens) == [1, 2, "S1", 3, "S2", 4, "S1", 5, 6, 7, "S2", "D"]

    def test_rank0_stream_has_no_stops(self):
        tokens = tokens_from_nested([1, 2, 3], rank=0)
        assert as_sig(tokens) == [1, 2, 3, "D"]

    def test_rank1_stream(self):
        tokens = tokens_from_nested([[1], [2, 3]], rank=1)
        assert as_sig(tokens) == [1, "S1", 2, 3, "S1", "D"]

    def test_wrap_applied_to_leaves(self):
        tokens = tokens_from_nested([1, 2], rank=0, wrap=lambda v: v * 10)
        assert data_values(tokens) == [10, 20]

    def test_bad_nesting_raises(self):
        with pytest.raises(StreamProtocolError):
            tokens_from_nested([1, 2], rank=1)

    def test_round_trip(self):
        nested = [[[1, 2], [3]], [[4], [5, 6, 7]]]
        tokens = tokens_from_nested(nested, rank=2)
        assert nested_from_tokens(tokens, rank=2) == nested


class TestValidation:
    def test_valid_stream_passes(self):
        validate_tokens(tokens_from_nested([[1], [2]], rank=1), rank=1)

    def test_missing_done(self):
        with pytest.raises(StreamProtocolError):
            validate_tokens([Data(1)], rank=0)

    def test_token_after_done(self):
        with pytest.raises(StreamProtocolError):
            validate_tokens([Data(1), DONE, Data(2), DONE], rank=0)

    def test_adjacent_stops_rejected(self):
        with pytest.raises(StreamProtocolError):
            validate_tokens([Data(1), Stop(1), Stop(2), DONE], rank=2)

    def test_leading_stop_rejected(self):
        with pytest.raises(StreamProtocolError):
            validate_tokens([Stop(1), Data(1), DONE], rank=1)

    def test_stop_above_rank_rejected(self):
        with pytest.raises(StreamProtocolError):
            validate_tokens([Data(1), Stop(3), DONE], rank=2)

    def test_stop_level_zero_rejected(self):
        with pytest.raises(StreamProtocolError):
            Stop(0)


class TestShapeInference:
    def test_regular_shape(self):
        tokens = tokens_from_nested([[[1, 2], [3, 4]], [[5, 6], [7, 8]]], rank=2)
        assert infer_concrete_shape(tokens, rank=2) == [2, 2, 2]

    def test_ragged_dimension_reported_as_none(self):
        tokens = tokens_from_nested([[[1, 2], [3]], [[4], [5, 6, 7]]], rank=2)
        assert infer_concrete_shape(tokens, rank=2) == [2, 2, None]


class TestEmitter:
    def test_adjacent_stops_merge_to_highest(self):
        emitter = ListEmitter()
        emitter.data("a")
        emitter.stop(1)
        emitter.stop(2)
        emitter.data("b")
        emitter.stop(1)
        emitter.done()
        assert as_sig(emitter.tokens) == ["a", "S2", "b", "S1", "D"]

    def test_pending_stop_flushed_before_done(self):
        emitter = ListEmitter()
        emitter.data("a")
        emitter.stop(3)
        emitter.done()
        assert as_sig(emitter.tokens) == ["a", "S3", "D"]

    def test_no_output_until_flush(self):
        emitter = ListEmitter()
        emitter.stop(1)
        assert emitter.tokens == []
        assert emitter.pending == 1
        emitter.flush()
        assert as_sig(emitter.tokens) == ["S1"]


# -- property-based tests -----------------------------------------------------

leaf = st.integers(min_value=0, max_value=99)


def nested_strategy(rank: int):
    strategy = st.lists(leaf, min_size=0, max_size=4)
    for _ in range(rank):
        strategy = st.lists(strategy, min_size=0, max_size=3)
    return strategy


def _prune_empty(node, depth):
    """Remove recursively empty groups (the encoding elides empty tensors)."""
    if depth == 0:
        return node
    pruned = [_prune_empty(child, depth - 1) for child in node]
    return [child for child in pruned if not _recursively_empty(child)]


def _recursively_empty(node):
    if isinstance(node, list):
        return all(_recursively_empty(child) for child in node) if node else True
    return False


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=3).flatmap(
    lambda rank: st.tuples(st.just(rank), nested_strategy(rank))))
def test_round_trip_property(case):
    """Serialization followed by parsing reproduces the nested structure,
    modulo empty tensors (which the stop-token encoding elides)."""
    rank, nested = case
    expected = _prune_empty(nested, rank)
    tokens = tokens_from_nested(nested, rank=rank)
    validate_tokens(tokens, rank=rank)
    assert nested_from_tokens(tokens, rank=rank) == expected


@settings(max_examples=60, deadline=None)
@given(nested_strategy(2))
def test_validate_always_accepts_serializer_output(nested):
    tokens = tokens_from_nested(nested, rank=2)
    validate_tokens(tokens, rank=2)
    assert data_values(tokens) == [x for outer in nested for inner in outer for x in inner]
