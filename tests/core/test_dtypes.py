"""Tests for data-type descriptors and runtime values."""

import numpy as np
import pytest

from repro.core.dims import Dim
from repro.core.dtypes import (BF16, F32, Address, AddressType, BufferHandle, BufferType,
                               Selector, SelectorType, Tile, TileType, TupleType,
                               TupleValue, elem_type, value_nbytes)
from repro.core.errors import ShapeError, TypeMismatchError
from repro.core.stream import Data, Stop


class TestElemTypes:
    def test_lookup(self):
        assert elem_type("bf16") is BF16
        assert elem_type(F32) is F32
        with pytest.raises(TypeMismatchError):
            elem_type("f64")

    def test_byte_widths(self):
        assert BF16.nbytes == 2
        assert F32.nbytes == 4


class TestTileType:
    def test_static_bytes(self):
        t = TileType(16, 64, "bf16")
        assert t.nbytes() == 16 * 64 * 2
        assert t.is_static

    def test_dynamic_bytes(self):
        t = TileType(Dim.dynamic("D"), 64, "bf16")
        assert not t.is_static
        assert t.nbytes({"D": 8}) == 8 * 64 * 2

    def test_with_rows(self):
        t = TileType(4, 8).with_rows(16)
        assert t.concrete_shape() == (16, 8)


class TestBufferAndTuple:
    def test_buffer_type_cardinality(self):
        b = BufferType(TileType(1, 64), [Dim.dynamic("D"), 2])
        assert b.rank == 2
        assert b.cardinality().evaluate({"D": 3}) == 6
        assert b.nbytes({"D": 3}) == 6 * 64 * 2

    def test_tuple_type(self):
        t = TupleType([TileType(1, 4), TileType(1, 8)])
        assert t.nbytes() == (4 + 8) * 2

    def test_selector_and_address_types(self):
        assert SelectorType(8).nbytes() == 8
        assert AddressType().nbytes() == 4


class TestTileValue:
    def test_zeros_and_from_array(self):
        t = Tile.zeros(2, 3)
        assert t.shape == (2, 3) and t.has_data
        assert np.allclose(t.to_array(), 0)
        u = Tile.from_array(np.arange(6).reshape(2, 3))
        assert u.nbytes == 12

    def test_meta_tile(self):
        t = Tile.meta(4, 4)
        assert not t.has_data and t.nbytes == 32
        with pytest.raises(TypeMismatchError):
            t.to_array()

    def test_1d_array_promoted_to_row(self):
        t = Tile.from_array(np.arange(5))
        assert t.shape == (1, 5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            Tile(2, 2, data=np.zeros((3, 3)))
        with pytest.raises(ShapeError):
            Tile(-1, 2)


class TestSelectorValue:
    def test_one_hot(self):
        s = Selector(3, 8)
        assert s.indices == (3,) and s.is_one_hot

    def test_multi_hot_sorted_unique(self):
        s = Selector([5, 1, 5], 8)
        assert s.indices == (1, 5) and not s.is_one_hot

    def test_out_of_range(self):
        with pytest.raises(ShapeError):
            Selector(8, 8)

    def test_equality(self):
        assert Selector([1, 2], 4) == Selector([2, 1], 4)
        assert Selector(1, 4) != Selector(1, 8)


class TestBufferHandle:
    def test_contents_and_bytes(self):
        items = [Data(Tile.meta(1, 8)), Stop(1), Data(Tile.meta(1, 8))]
        handle = BufferHandle(items, rank=1)
        assert handle.num_values == 2
        assert handle.nbytes == 2 * 8 * 2


class TestValueBytes:
    def test_tuple_value(self):
        v = TupleValue([Tile.meta(1, 4), Tile.meta(1, 8)])
        assert len(v) == 2 and v.nbytes == (4 + 8) * 2

    def test_scalars(self):
        assert value_nbytes(5) == 4
        assert value_nbytes(True) == 1
        assert value_nbytes(Address(7)) == 4
        with pytest.raises(TypeMismatchError):
            value_nbytes("not a value")
