"""Tests for the symbolic-expression engine."""

import pytest
from hypothesis import given, strategies as st

from repro.core import symbolic as sym
from repro.core.errors import SymbolicError


class TestConstruction:
    def test_constants_fold(self):
        assert sym.as_expr(3) == sym.Const(3)
        assert (sym.Const(2) + 3).evaluate() == 5
        assert (sym.Const(2) * 3 * 4).evaluate() == 24

    def test_symbols_keep_names(self):
        d = sym.Sym("D0")
        assert str(d) == "D0"
        assert d.symbols() == frozenset({d})

    def test_bool_rejected(self):
        with pytest.raises(SymbolicError):
            sym.as_expr(True)

    def test_non_integer_float_rejected(self):
        with pytest.raises(SymbolicError):
            sym.as_expr(1.5)

    def test_integer_float_accepted(self):
        assert sym.as_expr(4.0) == sym.Const(4)


class TestAlgebra:
    def test_addition_with_symbols(self):
        d = sym.Sym("D")
        expr = d + 3 + 2
        assert expr.evaluate({"D": 5}) == 10

    def test_multiplication_by_zero_collapses(self):
        d = sym.Sym("D")
        assert (d * 0) == sym.Const(0)

    def test_subtraction(self):
        d = sym.Sym("D")
        assert (d - 2).evaluate({d: 10}) == 8
        assert (10 - d).evaluate({d: 2}) == 8

    def test_ceil_div(self):
        d = sym.Sym("D")
        expr = sym.ceil_div(d, 4)
        assert expr.evaluate({"D": 9}) == 3
        assert expr.evaluate({"D": 8}) == 2
        assert sym.ceil_div(9, 4) == sym.Const(3)

    def test_floor_div(self):
        assert (sym.Const(9) // 4).evaluate() == 2

    def test_div_by_one_is_identity(self):
        d = sym.Sym("D")
        assert sym.ceil_div(d, 1) is d

    def test_div_by_zero_rejected(self):
        with pytest.raises(SymbolicError):
            sym.ceil_div(sym.Sym("D"), 0)

    def test_max_folding(self):
        d = sym.Sym("D")
        assert sym.smax(3, 7, 5) == sym.Const(7)
        assert sym.smax(d, d) is d
        assert sym.smax(d, 3).evaluate({"D": 10}) == 10
        assert sym.smax(d, 3).evaluate({"D": 1}) == 3

    def test_sum_and_product_helpers(self):
        assert sym.ssum([]) == sym.Const(0)
        assert sym.sprod([]) == sym.Const(1)
        d = sym.Sym("D")
        assert sym.ssum([d, 1, 2]).evaluate({"D": 3}) == 6
        assert sym.sprod([d, 2]).evaluate({"D": 3}) == 6


class TestSubstitution:
    def test_subs_by_name_and_object(self):
        d = sym.Sym("D")
        e = d * 2 + 1
        assert e.subs({"D": 4}).evaluate() == 9
        assert e.subs({d: 4}).evaluate() == 9

    def test_subs_with_expression(self):
        d, e = sym.Sym("D"), sym.Sym("E")
        expr = d + 1
        assert expr.subs({d: e * 2}).evaluate({"E": 3}) == 7

    def test_unbound_symbol_raises(self):
        with pytest.raises(SymbolicError):
            (sym.Sym("D") + 1).evaluate()

    def test_maybe_evaluate_returns_int_when_bound(self):
        d = sym.Sym("D")
        assert sym.maybe_evaluate(d + 1, {"D": 2}) == 3
        assert isinstance(sym.maybe_evaluate(d + 1, {}), sym.Expr)


class TestEqualityHashing:
    def test_structural_equality(self):
        a = sym.Sym("D") + 3
        b = 3 + sym.Sym("D")
        assert a == b
        assert hash(a) == hash(b)

    def test_int_comparison(self):
        assert sym.Const(5) == 5
        assert not (sym.Const(5) == 6)

    def test_fresh_symbols_are_unique(self):
        sym.reset_symbol_counter()
        a, b = sym.fresh_symbol("T"), sym.fresh_symbol("T")
        assert a.name != b.name


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=512))
def test_ceil_div_matches_python(n, d):
    assert sym.ceil_div(n, d).evaluate() == -(-n // d)


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=6))
def test_sum_matches_python(values):
    exprs = [sym.Sym(f"x{i}") for i in range(len(values))]
    bindings = {f"x{i}": v for i, v in enumerate(values)}
    assert sym.ssum(exprs).evaluate(bindings) == sum(values)
    assert sym.smax(*exprs).evaluate(bindings) == max(values)
